/**
 * @file
 * Result cache for experiment runs.
 *
 * Keys are a stable 64-bit FNV-1a hash over a canonical text
 * rendering of (workload, every SimConfig knob, every WorkloadParams
 * knob, code-version salt). Identical jobs therefore share one
 * simulation per process (in-memory tier) and — when a disk directory
 * is configured — across processes (on-disk tier), so re-running an
 * unchanged sweep is instant.
 *
 * Bump kCodeSalt in cache.cc whenever a change alters simulation
 * results; stale disk entries then miss instead of lying.
 */

#ifndef ASAP_EXP_CACHE_HH
#define ASAP_EXP_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exp/sweep.hh"
#include "harness/runner.hh"
#include "sim/hash.hh" // stableHash64 (historically declared here)

namespace asap
{

/** Canonical text rendering of a job (hash input; also debuggable). */
std::string describeJob(const ExperimentJob &job);

/** Stable cache key ("exp-" + 16 hex digits) for a job. */
std::string jobKey(const ExperimentJob &job);

/** The running code's version salt (baked into every key and written
 *  into every disk entry; see the invalidation contract in
 *  src/exp/README.md). */
const char *cacheCodeSalt();

/**
 * Remove `*.tmp.*` droppings older than @p older_than_seconds that
 * writers killed mid-insert left in @p dir. Runs automatically when a
 * disk-tier cache is opened; exposed for tests and tooling.
 * @return number of files removed
 */
std::size_t cleanStaleCacheTmp(const std::string &dir,
                               double older_than_seconds);

/**
 * Tagged cache payload: what a job produced. Run jobs fill only the
 * stat bundle; Crash jobs additionally carry the checker verdict of
 * the injected failure.
 */
struct CachedResult
{
    JobKind kind = JobKind::Run;
    RunResult run;        //!< stats (at completion, or at the crash)
    CrashVerdict verdict; //!< meaningful when kind == Crash
};

/** Serialize a RunResult as "field value" lines. */
std::string serializeResult(const RunResult &r);

/**
 * Parse serializeResult() output.
 * @return false if the text is truncated or malformed
 */
bool deserializeResult(const std::string &text, RunResult &out);

/** Serialize a tagged entry (Run entries match serializeResult()). */
std::string serializeEntry(const CachedResult &e);

/**
 * Parse serializeEntry() output; also accepts plain
 * serializeResult() text (an entry of kind Run) and pre-hardening
 * entries without a codeSalt line.
 * @param why when non-null, set to a human-readable rejection reason
 *            (truncated / malformed / code-salt mismatch) on failure
 * @return false if the text is truncated, malformed, or written by a
 *         different code version
 */
bool deserializeEntry(const std::string &text, CachedResult &out,
                      std::string *why = nullptr);

/** Hit/miss counters, snapshot via ResultCache::stats(). */
struct CacheStats
{
    std::uint64_t memHits = 0;  //!< served from the in-process map
    std::uint64_t diskHits = 0; //!< loaded from the disk tier
    std::uint64_t misses = 0;   //!< had to simulate

    std::uint64_t auxHits = 0;   //!< aux-tier entries served
    std::uint64_t auxMisses = 0; //!< aux-tier lookups that failed

    std::uint64_t hits() const { return memHits + diskHits; }
};

/**
 * Two-tier (memory, optional disk) result cache. Thread-safe; the
 * disk tier uses write-to-temp + rename so concurrent processes never
 * observe partial entries.
 */
class ResultCache
{
  public:
    /** @param disk_dir on-disk tier directory; empty disables it */
    explicit ResultCache(std::string disk_dir = "");

    /**
     * Look @p key up (memory first, then disk; disk hits are
     * promoted to memory). Counts a hit or miss.
     * @return true and fills @p out on a hit
     */
    bool lookup(const std::string &key, CachedResult &out);

    /** Store a freshly produced entry in both tiers. */
    void insert(const std::string &key, const CachedResult &e);

    /** Stat-bundle shorthands for Run-kind entries. */
    bool lookup(const std::string &key, RunResult &out);
    void insert(const std::string &key, const RunResult &r);

    /**
     * Auxiliary raw-text tier: memoized derivations of results (e.g.
     * a crash campaign's probe summary) that are not themselves
     * simulations. Same two-tier behaviour — in-memory map plus, when
     * the disk tier is on, a `<key>.aux` file written temp+rename —
     * and every entry is stamped with the code salt, so a derivation
     * rule change invalidates stored text the same way a simulation
     * change invalidates results.
     * @return true and fills @p out on a hit
     */
    bool lookupAux(const std::string &key, std::string &out);

    /** Store raw text under @p key in the aux tier. */
    void insertAux(const std::string &key, const std::string &text);

    /** Counter snapshot. */
    CacheStats stats() const;

    /** Drop the in-memory tier and reset counters (tests). */
    void clear();

    const std::string &diskDir() const { return dir; }

  private:
    std::string diskPath(const std::string &key) const;
    std::string auxPath(const std::string &key) const;

    mutable std::mutex mu;
    std::unordered_map<std::string, CachedResult> mem;
    std::unordered_map<std::string, std::string> auxMem;
    std::string dir;
    CacheStats counters;
};

/**
 * The per-process cache every sweep shares by default. Its disk tier
 * is enabled by the ASAP_CACHE_DIR environment variable (read once).
 */
ResultCache &processCache();

} // namespace asap

#endif // ASAP_EXP_CACHE_HH
