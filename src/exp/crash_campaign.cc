#include "exp/crash_campaign.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace asap
{

const std::vector<TickStrategyInfo> &
allTickStrategies()
{
    static const std::vector<TickStrategyInfo> table = {
        {TickStrategy::Stride, "stride",
         "evenly spaced crash points across the probed run"},
        {TickStrategy::EpochBiased, "epoch",
         "crash points jittered around estimated epoch boundaries"},
        {TickStrategy::Random, "random",
         "uniform random crash points (seeded, reproducible)"},
    };
    return table;
}

bool
tryParseTickStrategy(const std::string &name, TickStrategy &out)
{
    for (const TickStrategyInfo &info : allTickStrategies()) {
        if (name == info.name) {
            out = info.strategy;
            return true;
        }
    }
    return false;
}

TickStrategy
parseTickStrategy(const std::string &name)
{
    TickStrategy out = TickStrategy::Stride;
    if (tryParseTickStrategy(name, out))
        return out;
    std::string valid;
    for (const TickStrategyInfo &info : allTickStrategies()) {
        if (!valid.empty())
            valid += ", ";
        valid += info.name;
    }
    fatal("unknown tick strategy '", name, "'; valid strategies: ",
          valid, " (see --list-strategies)");
    return out; // unreachable
}

std::string
toString(TickStrategy strategy)
{
    switch (strategy) {
      case TickStrategy::Stride: return "stride";
      case TickStrategy::EpochBiased: return "epoch";
      case TickStrategy::Random: return "random";
    }
    return "?";
}

std::vector<Tick>
selectCrashTicks(TickStrategy strategy, Tick total_ticks,
                 std::uint64_t epochs, unsigned cores, unsigned count,
                 std::uint64_t seed)
{
    std::vector<Tick> ticks;
    ticks.reserve(count);
    const Tick total = std::max<Tick>(total_ticks, 1);
    Rng rng(seed);

    switch (strategy) {
      case TickStrategy::Stride:
        for (unsigned i = 0; i < count; ++i)
            ticks.push_back(
                std::max<Tick>(1, (Tick(i) + 1) * total / count));
        break;
      case TickStrategy::Random:
        for (unsigned i = 0; i < count; ++i)
            ticks.push_back(1 + rng.below(total));
        break;
      case TickStrategy::EpochBiased: {
        // Per-thread epoch length estimate: `epochs` counts every
        // thread's epochs, so one thread commits roughly every
        // total * cores / epochs ticks.
        const Tick span = std::max<Tick>(
            1, total * std::max(cores, 1u) / std::max<Tick>(epochs, 1));
        const Tick boundaries = std::max<Tick>(1, total / span);
        for (unsigned i = 0; i < count; ++i) {
            const Tick b = span * rng.range(1, boundaries);
            // Jitter within ±span/8 of the boundary: the window in
            // which commit messages, RT cleanup and CDR traffic for
            // that epoch are in flight.
            const Tick window = span / 8;
            Tick t = b + rng.below(2 * window + 1);
            t = t > window ? t - window : 1;
            ticks.push_back(std::min(std::max<Tick>(t, 1), total));
        }
        break;
      }
    }
    return ticks;
}

std::vector<ExperimentJob>
campaignProbeJobs(const CampaignSpec &spec)
{
    // One probe Run job per configuration — runtime and epoch count
    // bound the crash-tick selection. Probes are ordinary Run jobs:
    // parallel, deduplicated, cached (a figure sweep that already ran
    // this config makes the probe free).
    JobSet probes;
    for (const std::string &w : spec.workloads) {
        for (const ModelPair &m : spec.models) {
            for (unsigned cores : spec.coreCounts) {
                SimConfig cfg = spec.base;
                cfg.model = m.first;
                cfg.persistency = m.second;
                cfg.numCores = cores;
                probes.add(w, cfg, spec.params);
            }
        }
    }
    return probes.jobs();
}

std::string
probeMemoKey(const CampaignSpec &spec)
{
    // Hash the ordered probe job keys: any knob that changes a probe
    // simulation changes its jobKey (including the code salt), so the
    // memo invalidates exactly when the stats it summarizes would.
    std::string text = "probeMemo v1\n";
    for (const ExperimentJob &j : campaignProbeJobs(spec))
        text += jobKey(j) + "\n";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "prb-%016llx",
                  static_cast<unsigned long long>(stableHash64(text)));
    return buf;
}

std::string
serializeProbeStats(const std::vector<ProbeStat> &stats)
{
    std::ostringstream os;
    os << "probeStats v1\n";
    os << "count " << stats.size() << "\n";
    for (const ProbeStat &s : stats)
        os << s.runTicks << " " << s.epochs << "\n";
    os << "end 1\n";
    return os.str();
}

bool
deserializeProbeStats(const std::string &text,
                      std::vector<ProbeStat> &out)
{
    std::istringstream is(text);
    std::string tag, version;
    if (!(is >> tag >> version) || tag != "probeStats" ||
        version != "v1") {
        return false;
    }
    std::size_t count = 0;
    if (!(is >> tag >> count) || tag != "count")
        return false;
    std::vector<ProbeStat> stats;
    stats.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ProbeStat s;
        if (!(is >> s.runTicks >> s.epochs))
            return false;
        stats.push_back(s);
    }
    int marker = 0;
    if (!(is >> tag >> marker) || tag != "end" || marker != 1)
        return false;
    out = std::move(stats);
    return true;
}

std::vector<ProbeStat>
ensureProbeStats(const CampaignSpec &spec, const RunOptions &opt,
                 const SweepRunner &runner, bool *from_memo)
{
    if (from_memo)
        *from_memo = false;
    ResultCache &cache = opt.cache ? *opt.cache : processCache();
    const std::string key = probeMemoKey(spec);

    std::string memo;
    std::vector<ProbeStat> stats;
    if (cache.lookupAux(key, memo) &&
        deserializeProbeStats(memo, stats)) {
        if (from_memo)
            *from_memo = true;
        return stats;
    }

    const SweepResult probeSr =
        runner ? runner(campaignProbeJobs(spec), opt)
               : runJobs(campaignProbeJobs(spec), opt);
    stats.clear();
    stats.reserve(probeSr.jobs.size());
    for (std::size_t c = 0; c < probeSr.jobs.size(); ++c)
        stats.push_back({probeSr.at(c).runTicks, probeSr.at(c).epochs});
    cache.insertAux(key, serializeProbeStats(stats));
    return stats;
}

CampaignExpansion
expandCampaign(const CampaignSpec &spec,
               const std::vector<ProbeStat> &stats)
{
    const std::vector<ExperimentJob> confs = campaignProbeJobs(spec);
    if (confs.size() != stats.size()) {
        fatal("expandCampaign: ", stats.size(), " probe stats for ",
              confs.size(), " configurations");
    }
    CampaignExpansion out;
    JobSet crash;
    for (std::size_t c = 0; c < confs.size(); ++c) {
        const ExperimentJob &conf = confs[c];
        const ProbeStat &probe = stats[c];
        const std::vector<Tick> ticks = selectCrashTicks(
            spec.strategy, probe.runTicks, probe.epochs,
            conf.cfg.numCores, spec.ticksPerConfig,
            spec.tickSeed + 0x9e3779b97f4a7c15ULL * (c + 1));
        for (Tick t : ticks) {
            if (spec.sweepKind == JobKind::Permute) {
                crash.addPermute(conf.workload, conf.cfg, spec.params,
                                 t, spec.permuteBound, spec.permuteSeed,
                                 spec.permuteFault, "",
                                 spec.permuteEngine,
                                 spec.permuteThreads);
            } else {
                crash.addCrash(conf.workload, conf.cfg, spec.params, t);
            }
        }

        CampaignRow row;
        row.workload = conf.workload;
        row.model = conf.cfg.model;
        row.pm = conf.cfg.persistency;
        row.cores = conf.cfg.numCores;
        row.probeTicks = probe.runTicks;
        row.probeEpochs = probe.epochs;
        row.points = ticks.size();
        out.rows.push_back(std::move(row));
    }
    out.crashJobs = crash.jobs();
    return out;
}

CampaignExpansion
expandCampaign(const CampaignSpec &spec, const SweepResult &probe_sr)
{
    std::vector<ProbeStat> stats;
    stats.reserve(probe_sr.jobs.size());
    for (std::size_t c = 0; c < probe_sr.jobs.size(); ++c)
        stats.push_back({probe_sr.at(c).runTicks, probe_sr.at(c).epochs});
    return expandCampaign(spec, stats);
}

CampaignResult
runCampaign(const CampaignSpec &spec, const RunOptions &opt,
            const SweepRunner &runner)
{
    CampaignResult out;
    const std::vector<ProbeStat> stats =
        ensureProbeStats(spec, opt, runner, &out.probePhaseCached);
    CampaignExpansion expansion = expandCampaign(spec, stats);

    out.rows = std::move(expansion.rows);
    out.sweep = runner ? runner(std::move(expansion.crashJobs), opt)
                       : runJobs(std::move(expansion.crashJobs), opt);

    // Verdict accounting, in submission (= config) order.
    out.badJobs = out.sweep.inconsistentJobs();
    std::size_t next = 0;
    for (CampaignRow &row : out.rows) {
        for (std::size_t i = 0; i < row.points; ++i, ++next) {
            if (out.sweep.verdicts[next].consistent)
                ++row.consistent;
        }
    }
    return out;
}

std::string
reproCommand(const ExperimentJob &job, const std::string &state)
{
    const bool permute = job.kind == JobKind::Permute;
    std::ostringstream os;
    os << (permute ? "build/bench/crash_permute"
                   : "build/bench/crash_campaign")
       << " --repro"
       << " --workload " << job.workload;
    // Default-media repro lines stay byte-identical to pre-media ones.
    if (job.cfg.mediaProfile != kDefaultMediaProfile)
        os << " --media " << job.cfg.mediaProfile;
    os << " --model " << toString(job.cfg.model)
       << " --pm " << toString(job.cfg.persistency)
       << " --cores " << job.cfg.numCores
       << " --ops " << job.params.opsPerThread
       << " --seed " << job.params.seed
       << " --crash-tick " << job.crashTick;
    if (permute) {
        os << " --bound " << job.permuteBound
           << " --sample-seed " << job.permuteSeed;
        if (!job.permuteFault.empty())
            os << " --inject-fault " << job.permuteFault;
        if (!state.empty())
            os << " --state " << state;
        else if (!job.permuteState.empty())
            os << " --state " << job.permuteState;
    }
    return os.str();
}

} // namespace asap
