/**
 * @file
 * Emitters: render a completed sweep as machine-readable artifacts
 * (JSON for the bench-trajectory tooling, CSV for spreadsheets).
 * The human-readable figure tables stay with each bench — they are
 * presentation, not data.
 */

#ifndef ASAP_EXP_EMIT_HH
#define ASAP_EXP_EMIT_HH

#include <ostream>
#include <string>

#include "exp/engine.hh"

namespace asap
{

/** Write a sweep as a JSON document (stable field order). */
void emitJson(std::ostream &os, const SweepResult &sr);

/** Write a sweep as CSV with a header row. */
void emitCsv(std::ostream &os, const SweepResult &sr);

/**
 * Write JSON (or CSV if @p path ends in ".csv") to @p path.
 * @return false if the file cannot be written (warns)
 */
bool emitToFile(const std::string &path, const SweepResult &sr);

} // namespace asap

#endif // ASAP_EXP_EMIT_HH
