/**
 * @file
 * Crash-injection campaigns: systematic sweeps of power-failure
 * points through the experiment engine.
 *
 * A campaign fuzzes recovery consistency at scale: for every
 * (workload, model, core count) configuration it first measures the
 * undisturbed runtime and epoch count with a probe Run job, derives a
 * set of crash ticks from a selection strategy, then executes one
 * Crash job per tick — all through runJobs(), so crash points sweep
 * in parallel, deduplicate, and cache exactly like figure sweeps
 * (warm ASAP_CACHE_DIR re-runs are instant). Every inconsistency is
 * reproducible from a single printed `--repro` command line.
 */

#ifndef ASAP_EXP_CRASH_CAMPAIGN_HH
#define ASAP_EXP_CRASH_CAMPAIGN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/sweep.hh"

namespace asap
{

/** How a campaign picks crash ticks within a config's runtime. */
enum class TickStrategy
{
    Stride,      //!< uniform stride across [1, runTicks]
    EpochBiased, //!< clustered near estimated epoch boundaries
    Random,      //!< seeded uniform random
};

/** Parse "stride|epoch|random" (fatal on anything else). */
TickStrategy parseTickStrategy(const std::string &name);

/** Printable name for the enum above. */
std::string toString(TickStrategy strategy);

/**
 * Pick @p count crash ticks in [1, total_ticks].
 *
 * Deterministic in its arguments. EpochBiased estimates per-thread
 * epoch boundaries as evenly spaced commit points (the run's epoch
 * count is a global total, so boundary spacing is
 * total_ticks * cores / epochs) and samples tightly around them —
 * the moments the Recovery Table is busiest. Duplicate ticks are
 * possible for tiny runs; the engine dedups the resulting jobs.
 */
std::vector<Tick> selectCrashTicks(TickStrategy strategy,
                                   Tick total_ticks,
                                   std::uint64_t epochs, unsigned cores,
                                   unsigned count, std::uint64_t seed);

/** Declarative crash campaign over a configuration cross-product. */
struct CampaignSpec
{
    std::vector<std::string> workloads;
    std::vector<ModelPair> models;
    std::vector<unsigned> coreCounts = {4};
    WorkloadParams params;
    /** Base configuration; model/persistency/numCores/seed are
     *  overwritten per job, as in SweepSpec. */
    SimConfig base;

    TickStrategy strategy = TickStrategy::Stride;
    unsigned ticksPerConfig = 40; //!< crash points per configuration
    std::uint64_t tickSeed = 1;   //!< seed for tick selection
};

/** Per-configuration verdict summary row. */
struct CampaignRow
{
    std::string workload;
    ModelKind model = ModelKind::Asap;
    PersistencyModel pm = PersistencyModel::Release;
    unsigned cores = 0;

    Tick probeTicks = 0;          //!< undisturbed runtime (probe job)
    std::uint64_t probeEpochs = 0; //!< epochs opened in the probe
    std::size_t points = 0;       //!< crash points executed
    std::size_t consistent = 0;   //!< verdicts that passed the checker
};

/** A completed campaign: the crash sweep plus verdict accounting. */
struct CampaignResult
{
    SweepResult sweep;             //!< the crash jobs, in config order
    std::vector<CampaignRow> rows; //!< one row per configuration
    std::vector<std::size_t> badJobs; //!< sweep indices, inconsistent

    std::size_t crashPoints() const { return sweep.jobs.size(); }
    bool allConsistent() const { return badJobs.empty(); }
};

/**
 * Phase 1 of a campaign: one probe Run job per (workload, model,
 * core count) configuration, in the cross-product order rows are
 * reported in. Probes measure the undisturbed runtime and epoch
 * count that bound crash-tick selection.
 */
std::vector<ExperimentJob> campaignProbeJobs(const CampaignSpec &spec);

/** Phase-2 expansion: the crash jobs and their per-config rows. */
struct CampaignExpansion
{
    std::vector<ExperimentJob> crashJobs; //!< config-major, tick order
    std::vector<CampaignRow> rows;        //!< points filled, verdicts not
};

/**
 * Derive the crash sweep from probe results. @p probe_sr must be the
 * result of running campaignProbeJobs(spec) — tick selection is
 * deterministic in the spec and the probe stats, so every shard of a
 * distributed campaign expands an identical job list.
 */
CampaignExpansion expandCampaign(const CampaignSpec &spec,
                                 const SweepResult &probe_sr);

/**
 * Run a campaign: probe sweep, tick selection, crash sweep.
 * Both sweeps go through the engine with @p opt (parallel + cached).
 */
CampaignResult runCampaign(const CampaignSpec &spec,
                           const RunOptions &opt = {});

/**
 * One-line `bench/crash_campaign --repro ...` invocation that
 * replays exactly @p job (workload, model, seed, crash tick) and
 * reprints its verdict.
 */
std::string reproCommand(const ExperimentJob &job);

} // namespace asap

#endif // ASAP_EXP_CRASH_CAMPAIGN_HH
