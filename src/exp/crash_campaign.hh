/**
 * @file
 * Crash-injection campaigns: systematic sweeps of power-failure
 * points through the experiment engine.
 *
 * A campaign fuzzes recovery consistency at scale: for every
 * (workload, model, core count) configuration it first measures the
 * undisturbed runtime and epoch count with a probe Run job, derives a
 * set of crash ticks from a selection strategy, then executes one
 * Crash job per tick — all through runJobs(), so crash points sweep
 * in parallel, deduplicate, and cache exactly like figure sweeps
 * (warm ASAP_CACHE_DIR re-runs are instant). Every inconsistency is
 * reproducible from a single printed `--repro` command line.
 */

#ifndef ASAP_EXP_CRASH_CAMPAIGN_HH
#define ASAP_EXP_CRASH_CAMPAIGN_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/sweep.hh"

namespace asap
{

/**
 * How a campaign runs its sweeps: any callable with the runJobs()
 * shape. The default is runJobs itself; a daemon-routed campaign
 * substitutes the svc client so probes and crash jobs execute on a
 * running asapd instead of in-process.
 */
using SweepRunner = std::function<SweepResult(std::vector<ExperimentJob>,
                                              const RunOptions &)>;

/** How a campaign picks crash ticks within a config's runtime. */
enum class TickStrategy
{
    Stride,      //!< uniform stride across [1, runTicks]
    EpochBiased, //!< clustered near estimated epoch boundaries
    Random,      //!< seeded uniform random
};

/** Parse "stride|epoch|random"; returns false on an unknown name. */
bool tryParseTickStrategy(const std::string &name, TickStrategy &out);

/** Parse "stride|epoch|random" (fatal on anything else, listing the
 *  valid strategies in the error). */
TickStrategy parseTickStrategy(const std::string &name);

/** Printable name for the enum above. */
std::string toString(TickStrategy strategy);

/** One tick strategy the parser accepts, for --list-strategies. */
struct TickStrategyInfo
{
    TickStrategy strategy;
    const char *name;
    const char *description;
};

/** Every strategy, in parse order. */
const std::vector<TickStrategyInfo> &allTickStrategies();

/**
 * Pick @p count crash ticks in [1, total_ticks].
 *
 * Deterministic in its arguments. EpochBiased estimates per-thread
 * epoch boundaries as evenly spaced commit points (the run's epoch
 * count is a global total, so boundary spacing is
 * total_ticks * cores / epochs) and samples tightly around them —
 * the moments the Recovery Table is busiest. Duplicate ticks are
 * possible for tiny runs; the engine dedups the resulting jobs.
 */
std::vector<Tick> selectCrashTicks(TickStrategy strategy,
                                   Tick total_ticks,
                                   std::uint64_t epochs, unsigned cores,
                                   unsigned count, std::uint64_t seed);

/** Declarative crash campaign over a configuration cross-product. */
struct CampaignSpec
{
    std::vector<std::string> workloads;
    std::vector<ModelPair> models;
    std::vector<unsigned> coreCounts = {4};
    WorkloadParams params;
    /** Base configuration; model/persistency/numCores/seed are
     *  overwritten per job, as in SweepSpec. */
    SimConfig base;

    TickStrategy strategy = TickStrategy::Stride;
    unsigned ticksPerConfig = 40; //!< crash points per configuration
    std::uint64_t tickSeed = 1;   //!< seed for tick selection

    /** What each crash point runs: Crash checks the canonical
     *  post-crash state; Permute enumerates every reachable one
     *  (src/permute) with the knobs below. Probe jobs, tick
     *  selection and the probe memo are identical either way. */
    JobKind sweepKind = JobKind::Crash;
    std::uint64_t permuteBound = 4096; //!< max states per crash point
    std::uint64_t permuteSeed = 1;     //!< sampling seed above bound
    std::string permuteFault;          //!< fault hook ("", "drop-undo")
    /** Check-loop execution knobs (never keyed — see ExperimentJob). */
    std::string permuteEngine;   //!< "", "incremental", "naive"
    unsigned permuteThreads = 1; //!< 1 = inline, 0 = hw threads
};

/** Per-configuration verdict summary row. */
struct CampaignRow
{
    std::string workload;
    ModelKind model = ModelKind::Asap;
    PersistencyModel pm = PersistencyModel::Release;
    unsigned cores = 0;

    Tick probeTicks = 0;          //!< undisturbed runtime (probe job)
    std::uint64_t probeEpochs = 0; //!< epochs opened in the probe
    std::size_t points = 0;       //!< crash points executed
    std::size_t consistent = 0;   //!< verdicts that passed the checker
};

/** A completed campaign: the crash sweep plus verdict accounting. */
struct CampaignResult
{
    SweepResult sweep;             //!< the crash jobs, in config order
    std::vector<CampaignRow> rows; //!< one row per configuration
    std::vector<std::size_t> badJobs; //!< sweep indices, inconsistent

    /** True when the probe phase was served from the memoized probe
     *  summary instead of running the probe sweep. */
    bool probePhaseCached = false;

    std::size_t crashPoints() const { return sweep.jobs.size(); }
    bool allConsistent() const { return badJobs.empty(); }
};

/**
 * Probe summary of one configuration: the only two stats crash-tick
 * selection needs. A full probe RunResult is memoized down to this
 * pair so warm (and daemon) campaigns skip the probe phase entirely —
 * no probe sweep, no per-probe cache assembly.
 */
struct ProbeStat
{
    Tick runTicks = 0;          //!< undisturbed runtime
    std::uint64_t epochs = 0;   //!< epochs opened
};

/**
 * Aux-tier memo key for @p spec's probe phase: "prb-" + hash over the
 * ordered probe job keys. Strategy/ticksPerConfig/tickSeed are
 * deliberately excluded — they shape tick *selection*, not probe
 * *output* — so campaigns differing only in those share one memo.
 */
std::string probeMemoKey(const CampaignSpec &spec);

/** Render probe stats as aux-cache text (order = probe-job order). */
std::string serializeProbeStats(const std::vector<ProbeStat> &stats);

/**
 * Parse serializeProbeStats() output.
 * @return false if truncated, malformed, or the count disagrees
 */
bool deserializeProbeStats(const std::string &text,
                           std::vector<ProbeStat> &out);

/**
 * The probe phase, memoized: probe stats for @p spec in
 * campaignProbeJobs() order, served from the ResultCache aux tier
 * when a previous campaign (this process or, with a disk cache, any
 * process) derived them, else produced by running the probe sweep
 * through @p runner (empty = runJobs) and memoized for the next run.
 * @param from_memo when non-null, set to true on an aux-tier hit
 */
std::vector<ProbeStat> ensureProbeStats(const CampaignSpec &spec,
                                        const RunOptions &opt,
                                        const SweepRunner &runner = {},
                                        bool *from_memo = nullptr);

/**
 * Phase 1 of a campaign: one probe Run job per (workload, model,
 * core count) configuration, in the cross-product order rows are
 * reported in. Probes measure the undisturbed runtime and epoch
 * count that bound crash-tick selection.
 */
std::vector<ExperimentJob> campaignProbeJobs(const CampaignSpec &spec);

/** Phase-2 expansion: the crash jobs and their per-config rows. */
struct CampaignExpansion
{
    std::vector<ExperimentJob> crashJobs; //!< config-major, tick order
    std::vector<CampaignRow> rows;        //!< points filled, verdicts not
};

/**
 * Derive the crash sweep from probe results. @p probe_sr must be the
 * result of running campaignProbeJobs(spec) — tick selection is
 * deterministic in the spec and the probe stats, so every shard of a
 * distributed campaign expands an identical job list.
 */
CampaignExpansion expandCampaign(const CampaignSpec &spec,
                                 const SweepResult &probe_sr);

/**
 * Same expansion from bare probe stats (campaignProbeJobs() order) —
 * the form a memoized probe phase restores without ever materializing
 * a probe SweepResult. Fatal if the counts disagree.
 */
CampaignExpansion expandCampaign(const CampaignSpec &spec,
                                 const std::vector<ProbeStat> &stats);

/**
 * Run a campaign: probe phase (memoized via ensureProbeStats), tick
 * selection, crash sweep. Sweeps go through @p runner (empty =
 * runJobs) with @p opt (parallel + cached).
 */
CampaignResult runCampaign(const CampaignSpec &spec,
                           const RunOptions &opt = {},
                           const SweepRunner &runner = {});

/**
 * One-line `bench/crash_campaign --repro ...` (or, for Permute jobs,
 * `bench/crash_permute --repro ...`) invocation that replays exactly
 * @p job (workload, model, seed, crash tick, permute knobs) and
 * reprints its verdict. @p state narrows a permute repro to a single
 * enumerated state (pass the verdict's firstBadState).
 */
std::string reproCommand(const ExperimentJob &job,
                         const std::string &state = "");

} // namespace asap

#endif // ASAP_EXP_CRASH_CAMPAIGN_HH
