/**
 * @file
 * Sweep engine: runs a job list across a thread pool with cached,
 * deduplicated simulations and deterministic result assembly.
 *
 * Guarantees:
 *  - results[i] always corresponds to jobs[i], whatever the worker
 *    count — output is byte-identical for --jobs 1 and --jobs N;
 *  - each distinct configuration simulates at most once per process
 *    (duplicates within a sweep and across sweeps hit the cache);
 *  - workers never interleave partial log lines (sim/log.cc routes
 *    every message through one locked write path).
 */

#ifndef ASAP_EXP_ENGINE_HH
#define ASAP_EXP_ENGINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/cache.hh"
#include "exp/pool.hh"
#include "exp/sweep.hh"
#include "harness/runner.hh"

namespace asap
{

/** Execution knobs for one sweep. */
struct RunOptions
{
    /** Worker threads; 0 = ThreadPool::defaultThreads(). Ignored when
     *  an external executor is supplied. */
    unsigned jobs = 0;

    /** Cache to consult/fill; nullptr = the shared processCache(). */
    ResultCache *cache = nullptr;

    /**
     * Externally owned scheduler to run simulation tasks on; nullptr
     * makes the engine spin up (and tear down) its own ThreadPool.
     * A long-running service passes its shared scheduler here so
     * every sweep competes under one admission policy instead of
     * each one claiming the whole machine.
     */
    TaskExecutor *executor = nullptr;

    /**
     * Emit rate-limited progress/ETA lines (jobs done/total,
     * cache-hit rate, EMA-based ETA) to stderr while the sweep runs.
     * Off by default: progress goes through the locked log path and
     * bypasses the quiet flag, but never touches stdout, so bench
     * tables stay byte-identical with or without it.
     */
    bool progress = false;
};

/** A completed sweep: jobs, their results, and cache accounting. */
struct SweepResult
{
    std::vector<ExperimentJob> jobs;
    std::vector<RunResult> results; //!< results[i] belongs to jobs[i]

    /** verdicts[i] belongs to jobs[i]; default-constructed (and
     *  meaningless) for Run jobs — check jobs[i].kind. */
    std::vector<CrashVerdict> verdicts;

    std::size_t uniqueRuns = 0;   //!< simulations actually executed
    std::uint64_t cacheHits = 0;  //!< jobs served without simulating
    std::uint64_t diskHits = 0;   //!< subset of cacheHits from disk
    std::uint64_t traceHits = 0;  //!< simulations reusing a memoised trace
    std::uint64_t traceMisses = 0; //!< simulations that generated one
    std::uint64_t traceDiskHits = 0; //!< traces replayed from ASAP_TRACE_DIR
    double wallSeconds = 0.0;     //!< sweep wall-clock

    const RunResult &at(std::size_t i) const { return results[i]; }

    /** True if any job in the sweep is a crash-injection job. */
    bool hasCrashJobs() const;

    /** True if any job is a crash-state permutation job (gates the
     *  coverage columns in the emitters, so legacy crash-campaign
     *  artifacts keep their schema byte-for-byte). */
    bool hasPermuteJobs() const;

    /** True if any job runs on a non-default media profile (gates the
     *  media columns in the emitters, so single-media paper figures
     *  keep their pre-media artifact schema byte-for-byte). */
    bool hasNonDefaultMedia() const;

    /** True if any job is a streaming serve:* scenario (gates the
     *  persist-latency tail + request-throughput columns the same
     *  way hasNonDefaultMedia gates the media columns). */
    bool hasServeJobs() const;

    /** Indices of crash/permute jobs with an inconsistent verdict. */
    std::vector<std::size_t> inconsistentJobs() const;

    /**
     * First result matching the tuple (nullptr if absent). Handy for
     * cross-product sweeps where index arithmetic would be brittle.
     */
    const RunResult *find(const std::string &workload, ModelKind model,
                          PersistencyModel pm, unsigned cores) const;
};

/**
 * Simulate one job (no cache, no pool): run or crash-inject as the
 * kind demands and return the tagged payload. This is the unit of
 * work everything above schedules — runJobs() wraps it in dedup +
 * cache + assembly, and the svc daemon dispatches it from its own
 * priority queue.
 */
CachedResult executeJob(const ExperimentJob &job);

/** Run @p jobs (order preserved in the result). */
SweepResult runJobs(std::vector<ExperimentJob> jobs,
                    const RunOptions &opt = {});

/** Expand and run a declarative sweep. */
SweepResult runSweep(const SweepSpec &spec, const RunOptions &opt = {});

} // namespace asap

#endif // ASAP_EXP_ENGINE_HH
