/**
 * @file
 * Forwarding header: ThreadPool moved to sim/pool.hh so layers below
 * the experiment engine (e.g. the crash-state permuter) can run work
 * on it without linking asap_exp. Kept so existing includers compile
 * unchanged.
 */

#ifndef ASAP_EXP_POOL_FWD_HH
#define ASAP_EXP_POOL_FWD_HH

#include "sim/pool.hh"

#endif // ASAP_EXP_POOL_FWD_HH
