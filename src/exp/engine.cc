#include "exp/engine.hh"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "exp/pool.hh"

namespace asap
{

bool
SweepResult::hasCrashJobs() const
{
    for (const ExperimentJob &j : jobs) {
        if (j.kind == JobKind::Crash)
            return true;
    }
    return false;
}

std::vector<std::size_t>
SweepResult::inconsistentJobs() const
{
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].kind == JobKind::Crash && !verdicts[i].consistent)
            bad.push_back(i);
    }
    return bad;
}

const RunResult *
SweepResult::find(const std::string &workload, ModelKind model,
                  PersistencyModel pm, unsigned cores) const
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ExperimentJob &j = jobs[i];
        if (j.workload == workload && j.cfg.model == model &&
            j.cfg.persistency == pm && j.cfg.numCores == cores) {
            return &results[i];
        }
    }
    return nullptr;
}

SweepResult
runJobs(std::vector<ExperimentJob> jobs, const RunOptions &opt)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult sr;
    sr.jobs = std::move(jobs);
    sr.results.resize(sr.jobs.size());
    sr.verdicts.resize(sr.jobs.size());

    ResultCache &cache = opt.cache ? *opt.cache : processCache();
    const CacheStats before = cache.stats();

    // Deduplicate: the first job with a given key is its group's
    // leader and the only one that may simulate; duplicates copy the
    // leader's result afterwards.
    std::vector<std::string> keys(sr.jobs.size());
    std::unordered_map<std::string, std::size_t> leaderOf;
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        keys[i] = jobKey(sr.jobs[i]);
        if (leaderOf.emplace(keys[i], i).second)
            leaders.push_back(i);
    }

    // Serve leaders from the cache where possible; simulate the rest
    // on the pool. Each worker writes only its own results slot, so
    // assembly is deterministic regardless of completion order.
    std::vector<std::size_t> toRun;
    for (std::size_t i : leaders) {
        CachedResult hit;
        if (cache.lookup(keys[i], hit)) {
            sr.results[i] = std::move(hit.run);
            sr.verdicts[i] = std::move(hit.verdict);
        } else {
            toRun.push_back(i);
        }
    }
    if (!toRun.empty()) {
        ThreadPool pool(opt.jobs);
        for (std::size_t i : toRun) {
            pool.submit([&sr, &cache, &keys, i] {
                const ExperimentJob &job = sr.jobs[i];
                CachedResult e;
                e.kind = job.kind;
                if (job.kind == JobKind::Crash) {
                    CrashRunResult cr = runCrashExperiment(
                        job.workload, job.cfg, job.params,
                        job.crashTick);
                    e.run = std::move(cr.run);
                    e.verdict = std::move(cr.verdict);
                } else {
                    e.run = runExperiment(job.workload, job.cfg,
                                          job.params);
                }
                cache.insert(keys[i], e);
                sr.results[i] = std::move(e.run);
                sr.verdicts[i] = std::move(e.verdict);
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const std::size_t leader = leaderOf[keys[i]];
        if (leader != i) {
            sr.results[i] = sr.results[leader];
            sr.verdicts[i] = sr.verdicts[leader];
        }
    }

    sr.uniqueRuns = toRun.size();
    sr.cacheHits = sr.jobs.size() - sr.uniqueRuns;
    sr.diskHits = cache.stats().diskHits - before.diskHits;
    sr.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return sr;
}

SweepResult
runSweep(const SweepSpec &spec, const RunOptions &opt)
{
    return runJobs(spec.expand(), opt);
}

} // namespace asap
