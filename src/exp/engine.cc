#include "exp/engine.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "exp/pool.hh"
#include "serve/scenario.hh"
#include "sim/log.hh"

namespace asap
{

namespace
{

/**
 * Rate-limited progress/ETA reporter for long sweeps. Workers call
 * jobDone() as simulations finish; at most one line per interval
 * reaches stderr (via the locked log path, so lines never interleave
 * with worker warnings). The ETA is an exponential moving average of
 * per-job wall time divided across the worker count — coarse, but
 * self-correcting as the mix of cheap and expensive configs drains.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::size_t total_jobs, std::size_t pre_done,
                  unsigned workers)
        : total(total_jobs), done(pre_done), served(pre_done),
          workers(workers ? workers : 1)
    {
        if (total > 0 && pre_done > 0)
            print(/*force=*/true);
    }

    void
    jobDone(double job_seconds)
    {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        ema = ema == 0.0 ? job_seconds
                         : 0.3 * job_seconds + 0.7 * ema;
        print(done == total);
    }

  private:
    void
    print(bool force)
    {
        const auto now = std::chrono::steady_clock::now();
        if (!force && lastPrint.time_since_epoch().count() != 0 &&
            std::chrono::duration<double>(now - lastPrint).count() <
                kMinIntervalSeconds) {
            return;
        }
        lastPrint = now;
        const std::size_t remaining = total - done;
        const double eta =
            ema * static_cast<double>(remaining) / workers;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "progress: %zu/%zu jobs (%.0f%%), "
                      "%.0f%% cache-hit, eta %.0fs",
                      done, total,
                      100.0 * static_cast<double>(done) /
                          static_cast<double>(total ? total : 1),
                      100.0 * static_cast<double>(served) /
                          static_cast<double>(done ? done : 1),
                      eta);
        statusLine(buf);
    }

    static constexpr double kMinIntervalSeconds = 0.5;

    std::mutex mu;
    const std::size_t total;
    std::size_t done;
    const std::size_t served; //!< jobs satisfied without simulating
    const unsigned workers;
    double ema = 0.0;
    std::chrono::steady_clock::time_point lastPrint{};
};

} // namespace

bool
SweepResult::hasCrashJobs() const
{
    for (const ExperimentJob &j : jobs) {
        if (j.kind == JobKind::Crash)
            return true;
    }
    return false;
}

bool
SweepResult::hasNonDefaultMedia() const
{
    for (const ExperimentJob &j : jobs) {
        if (j.cfg.mediaProfile != kDefaultMediaProfile ||
            !j.cfg.mediaPerMc.empty())
            return true;
    }
    return false;
}

bool
SweepResult::hasServeJobs() const
{
    for (const ExperimentJob &j : jobs) {
        if (isServeWorkload(j.workload))
            return true;
    }
    return false;
}

bool
SweepResult::hasPermuteJobs() const
{
    for (const ExperimentJob &j : jobs) {
        if (j.kind == JobKind::Permute)
            return true;
    }
    return false;
}

std::vector<std::size_t>
SweepResult::inconsistentJobs() const
{
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].kind != JobKind::Run && !verdicts[i].consistent)
            bad.push_back(i);
    }
    return bad;
}

const RunResult *
SweepResult::find(const std::string &workload, ModelKind model,
                  PersistencyModel pm, unsigned cores) const
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ExperimentJob &j = jobs[i];
        if (j.workload == workload && j.cfg.model == model &&
            j.cfg.persistency == pm && j.cfg.numCores == cores) {
            return &results[i];
        }
    }
    return nullptr;
}

CachedResult
executeJob(const ExperimentJob &job)
{
    CachedResult e;
    e.kind = job.kind;
    if (job.kind == JobKind::Crash) {
        CrashRunResult cr = runCrashExperiment(job.workload, job.cfg,
                                               job.params,
                                               job.crashTick);
        e.run = std::move(cr.run);
        e.verdict = std::move(cr.verdict);
    } else if (job.kind == JobKind::Permute) {
        PermuteSpec spec;
        spec.bound = job.permuteBound;
        spec.sampleSeed = job.permuteSeed;
        spec.fault = job.permuteFault;
        spec.onlyState = job.permuteState;
        spec.engine = job.permuteEngine;
        spec.threads = job.permuteThreads;
        CrashRunResult cr = runPermuteExperiment(
            job.workload, job.cfg, job.params, job.crashTick, spec);
        e.run = std::move(cr.run);
        e.verdict = std::move(cr.verdict);
    } else {
        e.run = runExperiment(job.workload, job.cfg, job.params);
    }
    return e;
}

namespace
{

/** Barrier for tasks submitted to an external executor: the engine
 *  cannot pool.wait() on a scheduler it does not own, so it counts
 *  its own completions instead. */
class TaskLatch
{
  public:
    explicit TaskLatch(std::size_t count) : remaining(count) {}

    void
    done()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0)
            cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return remaining == 0; });
    }

  private:
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
};

} // namespace

SweepResult
runJobs(std::vector<ExperimentJob> jobs, const RunOptions &opt)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult sr;
    sr.jobs = std::move(jobs);
    sr.results.resize(sr.jobs.size());
    sr.verdicts.resize(sr.jobs.size());

    ResultCache &cache = opt.cache ? *opt.cache : processCache();
    const CacheStats before = cache.stats();
    const TraceCacheStats traceBefore = traceCacheStats();

    // Deduplicate: the first job with a given key is its group's
    // leader and the only one that may simulate; duplicates copy the
    // leader's result afterwards.
    std::vector<std::string> keys(sr.jobs.size());
    std::unordered_map<std::string, std::size_t> leaderOf;
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        keys[i] = jobKey(sr.jobs[i]);
        if (leaderOf.emplace(keys[i], i).second)
            leaders.push_back(i);
    }

    // Serve leaders from the cache where possible; simulate the rest
    // on the pool. Each worker writes only its own results slot, so
    // assembly is deterministic regardless of completion order.
    std::vector<std::size_t> toRun;
    for (std::size_t i : leaders) {
        CachedResult hit;
        if (cache.lookup(keys[i], hit)) {
            sr.results[i] = std::move(hit.run);
            sr.verdicts[i] = std::move(hit.verdict);
        } else {
            toRun.push_back(i);
        }
    }
    if (!toRun.empty()) {
        // Own pool unless the caller supplied an executor; either way
        // each task writes only its own results slot, so assembly is
        // deterministic regardless of completion order or scheduler.
        std::unique_ptr<ThreadPool> ownPool;
        TaskExecutor *exec = opt.executor;
        if (!exec) {
            ownPool = std::make_unique<ThreadPool>(opt.jobs);
            exec = ownPool.get();
        }
        TaskLatch latch(toRun.size());
        std::unique_ptr<ProgressMeter> meter;
        if (opt.progress) {
            meter = std::make_unique<ProgressMeter>(
                sr.jobs.size(), sr.jobs.size() - toRun.size(),
                exec->width());
        }
        for (std::size_t i : toRun) {
            exec->submit([&sr, &cache, &keys, &meter, &latch, i] {
                const auto jobStart = std::chrono::steady_clock::now();
                CachedResult e = executeJob(sr.jobs[i]);
                cache.insert(keys[i], e);
                sr.results[i] = std::move(e.run);
                sr.verdicts[i] = std::move(e.verdict);
                if (meter) {
                    meter->jobDone(std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       jobStart)
                                       .count());
                }
                latch.done();
            });
        }
        latch.wait();
    }

    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const std::size_t leader = leaderOf[keys[i]];
        if (leader != i) {
            sr.results[i] = sr.results[leader];
            sr.verdicts[i] = sr.verdicts[leader];
        }
    }

    sr.uniqueRuns = toRun.size();
    sr.cacheHits = sr.jobs.size() - sr.uniqueRuns;
    sr.diskHits = cache.stats().diskHits - before.diskHits;
    const TraceCacheStats traceAfter = traceCacheStats();
    sr.traceHits = traceAfter.hits - traceBefore.hits;
    sr.traceMisses = traceAfter.misses - traceBefore.misses;
    sr.traceDiskHits = traceAfter.diskHits - traceBefore.diskHits;
    sr.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return sr;
}

SweepResult
runSweep(const SweepSpec &spec, const RunOptions &opt)
{
    return runJobs(spec.expand(), opt);
}

} // namespace asap
