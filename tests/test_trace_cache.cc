/**
 * @file
 * On-disk TraceSet record/replay tests (the ASAP_TRACE_DIR tier).
 *
 * Clearing the in-process memoisation between runs simulates a fresh
 * process (a new sweep invocation or another shard) pointed at the
 * same directory: the second run must replay the recorded trace
 * byte-identically, and damaged or mismatched files must be rejected
 * loudly and regenerated silently correct.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/cache.hh"
#include "harness/runner.hh"
#include "pm/trace_io.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

using namespace asap;
namespace fs = std::filesystem;

namespace
{

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogQuiet(false); // the regeneration warning must be visible
        dir = fs::path(::testing::TempDir()) /
              ("asap_trace_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name()));
        fs::remove_all(dir);
        clearTraceCache();
        setTraceDirectory(dir.string());
    }

    void
    TearDown() override
    {
        setTraceDirectory("");
        clearTraceCache();
        fs::remove_all(dir);
        setLogQuiet(true);
    }

    WorkloadParams
    params() const
    {
        WorkloadParams p;
        p.opsPerThread = 20;
        return p;
    }

    RunResult
    runOnce() const
    {
        return runExperiment("cceh", ModelKind::Asap,
                             PersistencyModel::Release, 2, params());
    }

    /** The single trace file a runOnce() leaves in the directory. */
    fs::path
    traceFile() const
    {
        fs::path found;
        for (const auto &e : fs::directory_iterator(dir)) {
            if (e.path().extension() == ".bin") {
                EXPECT_TRUE(found.empty())
                    << "more than one trace file in " << dir;
                found = e.path();
            }
        }
        EXPECT_FALSE(found.empty()) << "no trace file in " << dir;
        return found;
    }

    fs::path dir;
};

TEST_F(TraceCacheTest, ColdRecordsWarmReplaysByteIdentically)
{
    const RunResult cold = runOnce();
    TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    const fs::path file = traceFile();
    EXPECT_GT(fs::file_size(file), sizeof(std::uint64_t));

    // "New process": drop the in-process memo, keep the directory.
    clearTraceCache();
    const RunResult warm = runOnce();
    s = traceCacheStats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.diskHits, 1u);

    // Everything deterministic round-trips exactly (hostNs is not in
    // the serialization, by design — it never matches across runs).
    EXPECT_EQ(serializeResult(cold), serializeResult(warm));
    EXPECT_EQ(cold.eventsExecuted, warm.eventsExecuted);
    EXPECT_GT(warm.eventsExecuted, 0u);
    EXPECT_GT(warm.hostNs, 0u); // the simulation itself still ran
}

TEST_F(TraceCacheTest, RepeatedRunsInOneProcessUseTheMemo)
{
    runOnce();
    runOnce();
    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.diskHits, 0u); // memo beats the disk tier
}

TEST_F(TraceCacheTest, TruncatedFileWarnsAndRegenerates)
{
    const RunResult good = runOnce();
    const fs::path file = traceFile();
    const auto full_size = fs::file_size(file);
    fs::resize_file(file, 10); // chop through the header

    clearTraceCache();
    ::testing::internal::CaptureStderr();
    const RunResult redone = runOnce();
    const std::string log = ::testing::internal::GetCapturedStderr();

    EXPECT_NE(log.find("regenerating"), std::string::npos) << log;
    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);  // counted as a generation, not a replay
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(serializeResult(good), serializeResult(redone));
    // The regeneration rewrote the file, restoring the tier.
    EXPECT_EQ(fs::file_size(file), full_size);
    clearTraceCache();
    runOnce();
    EXPECT_EQ(traceCacheStats().diskHits, 1u);
}

TEST_F(TraceCacheTest, CorruptPayloadWarnsAndRegenerates)
{
    const RunResult good = runOnce();
    const fs::path file = traceFile();
    {
        // Flip bytes in the middle of the op payload: the checksum
        // must catch it.
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(static_cast<std::streamoff>(fs::file_size(file) / 2));
        const char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
        f.write(junk, sizeof(junk));
    }
    clearTraceCache();
    ::testing::internal::CaptureStderr();
    const RunResult redone = runOnce();
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("regenerating"), std::string::npos) << log;
    EXPECT_NE(log.find("checksum"), std::string::npos) << log;
    EXPECT_EQ(serializeResult(good), serializeResult(redone));
}

TEST_F(TraceCacheTest, ParameterKeyMismatchRegenerates)
{
    const RunResult good = runOnce();
    const fs::path file = traceFile();
    // Overwrite with a structurally valid file recorded under a
    // different generation key (a stale hash-collision stand-in).
    const TraceSet other = buildTrace("cceh", 2, params());
    ASSERT_TRUE(saveTraceAtomic(other, file.string(), "bogus-key"));

    clearTraceCache();
    ::testing::internal::CaptureStderr();
    const RunResult redone = runOnce();
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("regenerating"), std::string::npos) << log;
    EXPECT_NE(log.find("key mismatch"), std::string::npos) << log;
    EXPECT_EQ(serializeResult(good), serializeResult(redone));
}

TEST_F(TraceCacheTest, UnsupportedVersionWarnsAndRegenerates)
{
    runOnce();
    const fs::path file = traceFile();
    {
        // Valid magic, absurd version, zero-padded remainder.
        std::ofstream f(file, std::ios::binary | std::ios::trunc);
        const std::uint32_t magic = 0x41534150, version = 99;
        f.write(reinterpret_cast<const char *>(&magic), 4);
        f.write(reinterpret_cast<const char *>(&version), 4);
        const char zeros[16] = {};
        f.write(zeros, sizeof(zeros));
    }
    clearTraceCache();
    ::testing::internal::CaptureStderr();
    runOnce();
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("regenerating"), std::string::npos) << log;
    EXPECT_NE(log.find("version"), std::string::npos) << log;
}

TEST_F(TraceCacheTest, MissingFileIsASilentMiss)
{
    // An empty directory is the normal cold state: no warning.
    ::testing::internal::CaptureStderr();
    runOnce();
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(log.find("regenerating"), std::string::npos) << log;
    EXPECT_EQ(traceCacheStats().misses, 1u);
}

} // namespace
