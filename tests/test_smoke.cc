/**
 * @file
 * End-to-end smoke tests: every model runs a synthetic multi-threaded
 * workload to completion under both persistency models, and ASAP
 * survives an injected crash with consistent memory.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "pm/recorder.hh"
#include "recovery/checker.hh"
#include "sim/log.hh"
#include "workloads/synthetic.hh"

namespace asap
{
namespace
{

TraceSet
makeTrace(unsigned threads, std::uint64_t seed, unsigned ops = 80)
{
    TraceRecorder rec(threads, seed);
    SyntheticParams p;
    p.opsPerThread = ops;
    genSyntheticWorkload(rec, p);
    return rec.finish();
}

class SmokeAllModels
    : public ::testing::TestWithParam<
          std::tuple<ModelKind, PersistencyModel>>
{
};

TEST_P(SmokeAllModels, RunsToCompletion)
{
    setLogQuiet(true);
    auto [kind, pmodel] = GetParam();
    SimConfig cfg;
    cfg.model = kind;
    cfg.persistency = pmodel;
    cfg.maxRunTicks = 500'000'000;
    System sys(cfg);
    sys.loadTrace(makeTrace(cfg.numCores, 7));
    ASSERT_TRUE(sys.run()) << "model " << toString(kind) << "/"
                           << toString(pmodel) << " did not finish";
    EXPECT_GT(sys.runTicks(), 0u);
    EXPECT_GT(sys.stats().get("core.pmStores"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, SmokeAllModels,
    ::testing::Combine(
        ::testing::Values(ModelKind::Baseline, ModelKind::Hops,
                          ModelKind::Asap, ModelKind::Eadr),
        ::testing::Values(PersistencyModel::Epoch,
                          PersistencyModel::Release)));

TEST(SmokeOrdering, AsapFasterThanBaselineSlowerSetups)
{
    setLogQuiet(true);
    Tick ticks[3];
    const ModelKind kinds[3] = {ModelKind::Baseline, ModelKind::Asap,
                                ModelKind::Eadr};
    for (int i = 0; i < 3; ++i) {
        SimConfig cfg;
        cfg.model = kinds[i];
        System sys(cfg);
        sys.loadTrace(makeTrace(cfg.numCores, 11, 150));
        ASSERT_TRUE(sys.run());
        ticks[i] = sys.runTicks();
    }
    // The headline ordering of Figure 8.
    EXPECT_LT(ticks[1], ticks[0]) << "ASAP should beat baseline";
    EXPECT_LE(ticks[2], ticks[1]) << "eADR should be fastest";
}

TEST(SmokeCrash, AsapCrashIsConsistent)
{
    setLogQuiet(true);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SimConfig cfg;
        cfg.model = ModelKind::Asap;
        cfg.seed = seed;
        System sys(cfg, /*keep_run_log=*/true);
        sys.loadTrace(makeTrace(cfg.numCores, seed, 60));
        sys.crashAt(40'000 * seed);
        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
    }
}

} // namespace
} // namespace asap
