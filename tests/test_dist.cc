/**
 * @file
 * Tests for the distributed-execution subsystem (src/dist/): shard
 * assignment, the cooperative lease protocol, manifest round-trips,
 * and the end-to-end guarantee the subsystem exists for — N shards
 * over a shared cache merge byte-identically to a single-host run,
 * with every simulation executed exactly once cluster-wide.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "dist/executor.hh"
#include "dist/lease.hh"
#include "dist/manifest.hh"
#include "dist/merge.hh"
#include "dist/shard.hh"
#include "exp/cache.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"

namespace asap
{
namespace
{

namespace fs = std::filesystem;

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.opsPerThread = 20;
    p.seed = 7;
    return p;
}

/** A small cross-product sweep with an intra-sweep duplicate. */
std::vector<ExperimentJob>
sampleJobs()
{
    SweepSpec spec;
    spec.workloads = {"queue", "skiplist"};
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {2};
    spec.params = tinyParams();
    std::vector<ExperimentJob> jobs = spec.expand();
    // One of each verdict-bearing kind, so manifest round-trips cover
    // the crash tick and the permute knobs.
    ExperimentJob crash = jobs.front();
    crash.kind = JobKind::Crash;
    crash.crashTick = 1234;
    jobs.push_back(crash);
    ExperimentJob perm = jobs.front();
    perm.kind = JobKind::Permute;
    perm.crashTick = 1234;
    perm.permuteBound = 256;
    perm.permuteSeed = 3;
    perm.permuteFault = "drop-undo";
    perm.permuteState = "1f";
    jobs.push_back(perm);
    jobs.push_back(jobs.front()); // duplicate: follows its leader
    return jobs;
}

/** Fresh scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Back-date a file's mtime by @p seconds (simulates a dead owner). */
void
ageFile(const std::string &path, double seconds)
{
    fs::last_write_time(
        path, fs::file_time_type::clock::now() -
                  std::chrono::duration_cast<fs::file_time_type::duration>(
                      std::chrono::duration<double>(seconds)));
}

TEST(Shard, ParseAndFormatRoundTrip)
{
    const ShardSpec spec = parseShardSpec("2/5");
    EXPECT_EQ(spec.index, 2u);
    EXPECT_EQ(spec.count, 5u);
    EXPECT_EQ(toString(spec), "2/5");
    EXPECT_DEATH(parseShardSpec("3/3"), "bad shard spec");
    EXPECT_DEATH(parseShardSpec("1of2"), "bad shard spec");
    EXPECT_DEATH(parseShardSpec("/4"), "bad shard spec");
    EXPECT_DEATH(parseShardSpec("1/"), "bad shard spec");
}

TEST(Shard, PartitionIsDisjointAndCovering)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();
    std::set<std::string> leaderKeys;
    for (const ExperimentJob &job : jobs)
        leaderKeys.insert(jobKey(job));

    for (unsigned n : {1u, 2u, 3u, 8u}) {
        std::size_t assigned = 0;
        for (const std::string &key : leaderKeys) {
            unsigned owners = 0;
            for (unsigned i = 0; i < n; ++i) {
                ShardSpec spec;
                spec.index = i;
                spec.count = n;
                const unsigned s = shardOf(key, spec);
                EXPECT_LT(s, n);
                // Every spec with the same (count, salt) must agree,
                // whatever its own index is.
                if (s == i)
                    ++owners;
            }
            EXPECT_EQ(owners, 1u) << "key " << key << " n " << n;
            ++assigned;
        }
        EXPECT_EQ(assigned, leaderKeys.size());
    }
}

TEST(Shard, SaltRedealsThePartition)
{
    ShardSpec plain;
    plain.count = 4;
    ShardSpec salted = plain;
    salted.salt = "redeal";
    bool moved = false;
    for (int i = 0; i < 64; ++i) {
        const std::string key = "exp-" + std::to_string(i);
        moved = moved || shardOf(key, plain) != shardOf(key, salted);
    }
    EXPECT_TRUE(moved);
}

TEST(Shard, SweepIdDependsOnJobListAndOrder)
{
    std::vector<ExperimentJob> jobs = sampleJobs();
    const std::string id = sweepId(jobs);
    EXPECT_EQ(id.size(), 16u);
    EXPECT_EQ(sweepId(jobs), id); // deterministic

    std::vector<ExperimentJob> swapped = jobs;
    std::swap(swapped[0], swapped[1]);
    EXPECT_NE(sweepId(swapped), id);

    std::vector<ExperimentJob> shorter(jobs.begin(), jobs.end() - 1);
    EXPECT_NE(sweepId(shorter), id);
}

TEST(Lease, AcquireIsExclusiveUntilReleased)
{
    LeaseConfig cfg;
    cfg.dir = scratchDir("asap_lease_excl");
    LeaseManager a(cfg), b(cfg);

    ASSERT_EQ(a.tryAcquire("exp-1"), LeaseManager::Acquire::Acquired);
    EXPECT_EQ(a.heldCount(), 1u);
    EXPECT_EQ(b.tryAcquire("exp-1"), LeaseManager::Acquire::Busy);

    a.release("exp-1");
    EXPECT_EQ(a.heldCount(), 0u);
    EXPECT_EQ(b.tryAcquire("exp-1"), LeaseManager::Acquire::Acquired);
    b.release("exp-1");
}

TEST(Lease, StaleLeaseOfDeadOwnerIsStolen)
{
    LeaseConfig cfg;
    cfg.dir = scratchDir("asap_lease_stale");
    cfg.ttlSeconds = 30.0;
    LeaseManager a(cfg);
    ASSERT_EQ(a.tryAcquire("exp-2"), LeaseManager::Acquire::Acquired);

    // Fresh: a second manager must not steal it.
    LeaseManager b(cfg);
    EXPECT_EQ(b.tryAcquire("exp-2"), LeaseManager::Acquire::Busy);

    // Simulate the owner dying: its heartbeat stops, the mtime ages
    // past the TTL, and the reclaim path takes over.
    ageFile(a.leasePath("exp-2"), cfg.ttlSeconds + 5.0);
    EXPECT_EQ(b.tryAcquire("exp-2"), LeaseManager::Acquire::Acquired);
    b.release("exp-2");
}

TEST(Lease, HeartbeatRefreshesHeldLeases)
{
    LeaseConfig cfg;
    cfg.dir = scratchDir("asap_lease_beat");
    cfg.ttlSeconds = 60.0;
    cfg.heartbeatSeconds = 0.05;
    LeaseManager a(cfg);
    ASSERT_EQ(a.tryAcquire("exp-3"), LeaseManager::Acquire::Acquired);

    // Age the file, then wait for at least one heartbeat to pull the
    // mtime back to the present.
    const std::string path = a.leasePath("exp-3");
    ageFile(path, 30.0);
    const auto aged = fs::last_write_time(path);
    for (int i = 0; i < 100 && fs::last_write_time(path) <= aged; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GT(fs::last_write_time(path), aged);
    EXPECT_TRUE(a.isFresh(path));
}

TEST(Manifest, SerializationRoundTrips)
{
    ShardManifest m;
    m.shard.index = 1;
    m.shard.count = 3;
    m.shard.salt = "salt with spaces";
    m.sweep = "00ff00ff00ff00ff";
    m.owned = 4;
    m.simulated = 3;
    m.claimed = 1;
    m.cachedHits = 2;
    m.leasedSkipped = 1;
    m.otherSkipped = 5;
    m.diskHits = 7;
    m.traceHits = 9;
    m.wallSeconds = 1.25;

    const std::vector<ExperimentJob> jobs = sampleJobs();
    for (const ExperimentJob &job : jobs)
        m.jobs.push_back(toManifestJob(job, jobKey(job)));
    m.jobs[0].status = ShardJobStatus::Done;
    m.jobs[1].status = ShardJobStatus::Claimed;
    m.jobs[2].status = ShardJobStatus::Cached;
    m.jobs.back().status = ShardJobStatus::Dup;

    ShardManifest out;
    std::string why;
    ASSERT_TRUE(deserializeManifest(serializeManifest(m), out, &why))
        << why;
    EXPECT_EQ(out.shard.index, m.shard.index);
    EXPECT_EQ(out.shard.count, m.shard.count);
    EXPECT_EQ(out.shard.salt, m.shard.salt);
    EXPECT_EQ(out.sweep, m.sweep);
    EXPECT_EQ(out.owned, m.owned);
    EXPECT_EQ(out.simulated, m.simulated);
    EXPECT_EQ(out.claimed, m.claimed);
    EXPECT_EQ(out.cachedHits, m.cachedHits);
    EXPECT_EQ(out.leasedSkipped, m.leasedSkipped);
    EXPECT_EQ(out.otherSkipped, m.otherSkipped);
    EXPECT_EQ(out.diskHits, m.diskHits);
    EXPECT_EQ(out.traceHits, m.traceHits);
    EXPECT_DOUBLE_EQ(out.wallSeconds, m.wallSeconds);
    ASSERT_EQ(out.jobs.size(), m.jobs.size());
    for (std::size_t i = 0; i < m.jobs.size(); ++i) {
        EXPECT_EQ(out.jobs[i].key, m.jobs[i].key);
        EXPECT_EQ(out.jobs[i].kind, m.jobs[i].kind);
        EXPECT_EQ(out.jobs[i].workload, m.jobs[i].workload);
        EXPECT_EQ(out.jobs[i].model, m.jobs[i].model);
        EXPECT_EQ(out.jobs[i].pm, m.jobs[i].pm);
        EXPECT_EQ(out.jobs[i].cores, m.jobs[i].cores);
        EXPECT_EQ(out.jobs[i].seed, m.jobs[i].seed);
        EXPECT_EQ(out.jobs[i].ops, m.jobs[i].ops);
        EXPECT_EQ(out.jobs[i].crashTick, m.jobs[i].crashTick);
        EXPECT_EQ(out.jobs[i].permuteBound, m.jobs[i].permuteBound);
        EXPECT_EQ(out.jobs[i].permuteSeed, m.jobs[i].permuteSeed);
        EXPECT_EQ(out.jobs[i].permuteFault, m.jobs[i].permuteFault);
        EXPECT_EQ(out.jobs[i].permuteState, m.jobs[i].permuteState);
        EXPECT_EQ(out.jobs[i].status, m.jobs[i].status);
    }
}

TEST(Manifest, RejectsDamagedText)
{
    ShardManifest m;
    m.shard.count = 1;
    m.sweep = "feed";
    const std::string good = serializeManifest(m);

    ShardManifest out;
    std::string why;
    EXPECT_FALSE(deserializeManifest(
        good.substr(0, good.size() - 7), out, &why));
    EXPECT_NE(why.find("truncated"), std::string::npos);

    std::string wrongVersion = good;
    wrongVersion.replace(wrongVersion.find("manifest 3"), 10,
                         "manifest 9");
    EXPECT_FALSE(deserializeManifest(wrongVersion, out, &why));
    EXPECT_NE(why.find("version"), std::string::npos);

    EXPECT_FALSE(deserializeManifest("manifest 3\nbogus 3\nend 1\n",
                                     out, &why));
    EXPECT_NE(why.find("unknown field"), std::string::npos);
}

TEST(Dist, ShardedRunsMergeByteIdenticalToSingleHost)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();

    // Reference: one host, no disk tier involved.
    ResultCache local;
    RunOptions ro;
    ro.cache = &local;
    const SweepResult single = runJobs(jobs, ro);
    std::ostringstream want;
    emitCsv(want, single);

    const std::string dir = scratchDir("asap_dist_merge");
    std::vector<ShardManifest> manifests;
    std::size_t leaders = 0;
    {
        std::set<std::string> keys;
        for (const ExperimentJob &job : jobs)
            keys.insert(jobKey(job));
        leaders = keys.size();
    }
    std::size_t simulatedTotal = 0;
    for (unsigned i = 0; i < 3; ++i) {
        // A fresh ResultCache per shard approximates a separate
        // process: only the disk tier is shared.
        ResultCache shardCache(dir);
        DistOptions opt;
        opt.shard.index = i;
        opt.shard.count = 3;
        opt.cache = &shardCache;
        const ShardManifest m = runJobsSharded(jobs, opt);
        EXPECT_EQ(m.jobs.size(), jobs.size());
        simulatedTotal += m.simulated;
        manifests.push_back(m);
    }
    EXPECT_EQ(simulatedTotal, leaders);

    // The manifests written to disk must round-trip to what the
    // executor returned.
    ShardManifest reloaded;
    ASSERT_TRUE(loadManifest(manifests[0].path, reloaded));
    EXPECT_EQ(reloaded.sweep, manifests[0].sweep);
    EXPECT_EQ(reloaded.jobs.size(), manifests[0].jobs.size());

    ResultCache mergeCache(dir);
    const MergeReport report = mergeShards(manifests, mergeCache);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.duplicateSims, 0u);
    EXPECT_EQ(report.simulatedTotal, leaders);
    EXPECT_EQ(report.shardsSeen.size(), 3u);

    std::ostringstream got;
    emitCsv(got, report.result);
    EXPECT_EQ(got.str(), want.str());
}

TEST(Dist, ClaimRecoversJobsOfACrashedShard)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();
    const std::string dir = scratchDir("asap_dist_claim");

    // Shard 0 of 2 "crashes" before doing anything: it leaves only a
    // stale lease on one of its jobs (as a SIGKILLed process would —
    // no manifest, no cache entries, heartbeat stopped).
    ShardSpec crashed;
    crashed.index = 0;
    crashed.count = 2;
    std::string crashedKey;
    for (const ExperimentJob &job : jobs) {
        const std::string key = jobKey(job);
        if (shardOf(key, crashed) == crashed.index) {
            crashedKey = key;
            break;
        }
    }
    ASSERT_FALSE(crashedKey.empty()) << "partition left shard 0 empty";
    {
        LeaseConfig lc;
        lc.dir = dir + "/leases";
        LeaseManager dead(lc);
        ASSERT_EQ(dead.tryAcquire(crashedKey),
                  LeaseManager::Acquire::Acquired);
        // Pull the lease file out from under the manager so its
        // destructor cannot release it (a SIGKILL wouldn't).
        const std::string path = dead.leasePath(crashedKey);
        const std::string orphan = path + ".orphan";
        fs::rename(path, orphan);
        dead.release(crashedKey);
        fs::rename(orphan, path);
        ageFile(path, 3600.0);
    }

    // The surviving shard re-runs with --claim and a TTL the stale
    // lease has long exceeded: it must pick up every shard-0 job.
    ResultCache survivorCache(dir);
    DistOptions opt;
    opt.shard.index = 1;
    opt.shard.count = 2;
    opt.claim = true;
    opt.cache = &survivorCache;
    opt.leaseTtlSeconds = 60.0;
    const ShardManifest m = runJobsSharded(jobs, opt);

    std::size_t leaders = 0;
    {
        std::set<std::string> keys;
        for (const ExperimentJob &job : jobs)
            keys.insert(jobKey(job));
        leaders = keys.size();
    }
    EXPECT_EQ(m.simulated, leaders);
    EXPECT_EQ(m.claimed, leaders - m.owned);
    EXPECT_EQ(m.leasedSkipped, 0u);

    // One manifest suffices for a complete, duplicate-free merge.
    ResultCache mergeCache(dir);
    const MergeReport report = mergeShards({m}, mergeCache);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.duplicateSims, 0u);
    EXPECT_EQ(report.simulatedTotal, leaders);
}

TEST(Dist, FreshLeaseIsRespectedEvenWithClaim)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();
    const std::string dir = scratchDir("asap_dist_leased");

    // A live shard holds one of shard 0's jobs.
    LeaseConfig lc;
    lc.dir = dir + "/leases";
    LeaseManager holder(lc);
    ShardSpec spec;
    spec.index = 0;
    spec.count = 1;
    const std::string heldKey = jobKey(jobs.front());
    ASSERT_EQ(holder.tryAcquire(heldKey),
              LeaseManager::Acquire::Acquired);

    ResultCache cache(dir);
    DistOptions opt;
    opt.shard = spec;
    opt.claim = true;
    opt.cache = &cache;
    const ShardManifest m = runJobsSharded(jobs, opt);
    EXPECT_EQ(m.leasedSkipped, 1u);

    // The held job is the merge's hole until the holder finishes.
    ResultCache mergeCache(dir);
    const MergeReport report = mergeShards({m}, mergeCache);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_FALSE(report.complete());
    for (std::size_t i : report.missing)
        EXPECT_EQ(jobKey(report.result.jobs[i]), heldKey);
    holder.release(heldKey);
}

TEST(Dist, EnsureJobsCompletesDespiteStaleLeases)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();
    const std::string dir = scratchDir("asap_dist_ensure");

    // A dead process left a stale lease on the first job.
    {
        LeaseConfig lc;
        lc.dir = dir + "/leases";
        LeaseManager dead(lc);
        const std::string key = jobKey(jobs.front());
        ASSERT_EQ(dead.tryAcquire(key),
                  LeaseManager::Acquire::Acquired);
        const std::string path = dead.leasePath(key);
        fs::rename(path, path + ".orphan");
        dead.release(key);
        fs::rename(path + ".orphan", path);
        ageFile(path, 3600.0);
    }

    ResultCache cache(dir);
    DistOptions opt;
    opt.cache = &cache;
    opt.leaseTtlSeconds = 60.0;
    const SweepResult got = ensureJobs(jobs, opt);
    ASSERT_EQ(got.jobs.size(), jobs.size());
    EXPECT_EQ(got.uniqueRuns, 0u); // final assembly is all cache hits

    // Equivalent to a plain single-host run of the same list.
    ResultCache local;
    RunOptions ro;
    ro.cache = &local;
    const SweepResult want = runJobs(jobs, ro);
    std::ostringstream a, b;
    emitCsv(a, got);
    emitCsv(b, want);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Dist, ShardingRequiresADiskTier)
{
    const std::vector<ExperimentJob> jobs = sampleJobs();
    ResultCache memoryOnly;
    DistOptions opt;
    opt.cache = &memoryOnly;
    EXPECT_DEATH(runJobsSharded(jobs, opt), "ASAP_CACHE_DIR");
    EXPECT_DEATH(ensureJobs(jobs, opt), "ASAP_CACHE_DIR");
}

TEST(Merge, RefusesToMixSweeps)
{
    ShardManifest a, b;
    a.shard.count = 2;
    a.sweep = "aaaaaaaaaaaaaaaa";
    b.shard.index = 1;
    b.shard.count = 2;
    b.sweep = "bbbbbbbbbbbbbbbb";
    ResultCache cache;
    const MergeReport report = mergeShards({a, b}, cache);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.error.find("refusing to mix sweeps"),
              std::string::npos);
    EXPECT_TRUE(mergeShards({}, cache).error.find("no shard") !=
                std::string::npos);
}

} // namespace
} // namespace asap
