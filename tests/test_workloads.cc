/**
 * @file
 * Functional tests for the workload data structures (they must be
 * correct key-value stores, not just store generators) and
 * well-formedness properties of every generated trace.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "pm/recorder.hh"
#include "workloads/cceh.hh"
#include "workloads/dash.hh"
#include "workloads/fast_fair.hh"
#include "workloads/kv_util.hh"
#include "workloads/part.hh"
#include "workloads/pclht.hh"
#include "workloads/pmasstree.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace asap
{
namespace
{

// ------------------------------------------------------- kv correctness

template <typename Table>
void
insertSearchRoundTrip(Table &table, unsigned n)
{
    std::unordered_map<std::uint64_t, std::uint64_t> expect;
    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t key = makeKey(i);
        const std::uint64_t value = hash64(key) ^ 0x1234;
        table.insert(i % 4, key, value);
        expect[key] = value;
    }
    for (const auto &[key, value] : expect)
        EXPECT_EQ(table.search(0, key), value) << "key " << key;
}

TEST(Cceh, InsertSearch)
{
    TraceRecorder rec(4, 1);
    Cceh table(rec, 2);
    insertSearchRoundTrip(table, 600);
    EXPECT_GT(table.splits(), 0u) << "600 keys must split segments";
}

TEST(Cceh, UpdateInPlace)
{
    TraceRecorder rec(4, 1);
    Cceh table(rec, 2);
    const std::uint64_t key = makeKey(1);
    table.insert(0, key, 1);
    table.insert(1, key, 2);
    EXPECT_EQ(table.search(0, key), 2u);
}

TEST(Cceh, MissingKeyReturnsZero)
{
    TraceRecorder rec(4, 1);
    Cceh table(rec, 2);
    EXPECT_EQ(table.search(0, makeKey(77)), 0u);
}

TEST(Cceh, DirectoryDoubles)
{
    TraceRecorder rec(4, 1);
    Cceh table(rec, 1);
    insertSearchRoundTrip(table, 1500);
    EXPECT_GT(table.globalDepth(), 1u);
}

TEST(Pclht, InsertSearch)
{
    TraceRecorder rec(4, 1);
    Pclht table(rec, 64); // small: forces overflow chains
    insertSearchRoundTrip(table, 500);
    EXPECT_GT(table.chains(), 0u);
}

TEST(Pclht, UpdateInPlace)
{
    TraceRecorder rec(4, 1);
    Pclht table(rec, 64);
    table.insert(0, makeKey(9), 10);
    table.insert(1, makeKey(9), 20);
    EXPECT_EQ(table.search(2, makeKey(9)), 20u);
}

TEST(Pclht, RemoveAndReinsert)
{
    TraceRecorder rec(4, 1);
    Pclht table(rec, 64);
    table.insert(0, makeKey(1), 10);
    table.insert(0, makeKey(2), 20);
    EXPECT_TRUE(table.remove(1, makeKey(1)));
    EXPECT_EQ(table.search(2, makeKey(1)), 0u);
    EXPECT_EQ(table.search(2, makeKey(2)), 20u);
    EXPECT_FALSE(table.remove(1, makeKey(1)));
    table.insert(3, makeKey(1), 11);
    EXPECT_EQ(table.search(0, makeKey(1)), 11u);
}

TEST(FastFair, InsertSearchSplits)
{
    TraceRecorder rec(4, 1);
    FastFair tree(rec);
    insertSearchRoundTrip(tree, 800);
    EXPECT_GT(tree.splits(), 0u);
    EXPECT_GT(tree.height(), 1u);
}

TEST(FastFair, SortedInsertOrderIndependent)
{
    TraceRecorder rec(4, 1);
    FastFair tree(rec);
    // Descending insert order still searches correctly.
    for (int i = 400; i > 0; --i)
        tree.insert(0, makeKey(i), hash64(i));
    for (int i = 1; i <= 400; ++i)
        EXPECT_EQ(tree.search(0, makeKey(i)), hash64(i));
}

TEST(FastFair, RemoveDeletesKeys)
{
    TraceRecorder rec(4, 1);
    FastFair tree(rec);
    for (int i = 0; i < 200; ++i)
        tree.insert(0, makeKey(i), hash64(i));
    for (int i = 0; i < 200; i += 2)
        EXPECT_TRUE(tree.remove(1, makeKey(i)));
    for (int i = 0; i < 200; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(tree.search(2, makeKey(i)), 0u);
        else
            EXPECT_EQ(tree.search(2, makeKey(i)), hash64(i));
    }
    EXPECT_FALSE(tree.remove(0, makeKey(999)));
}

TEST(FastFair, ScanWalksLeafChain)
{
    TraceRecorder rec(4, 1);
    FastFair tree(rec);
    for (int i = 0; i < 300; ++i)
        tree.insert(0, makeKey(i), makeKey(i) + 1);
    std::vector<std::uint64_t> out;
    const unsigned got = tree.scan(0, 0, 100, out);
    EXPECT_EQ(got, 100u);
    EXPECT_EQ(out.size(), 100u);
    // Values are key+1 in key order, so the series is increasing.
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GT(out[i], out[i - 1]);
}

TEST(FastFair, ScanBeyondEndReturnsRemainder)
{
    TraceRecorder rec(4, 1);
    FastFair tree(rec);
    for (int i = 0; i < 50; ++i)
        tree.insert(0, makeKey(i), makeKey(i) + 1);
    std::vector<std::uint64_t> out;
    EXPECT_EQ(tree.scan(0, 0, 1000, out), 50u);
}

TEST(DashEh, InsertSearch)
{
    TraceRecorder rec(4, 1);
    DashEh table(rec, 2);
    insertSearchRoundTrip(table, 500);
}

TEST(DashLh, InsertMostlyFound)
{
    TraceRecorder rec(4, 1);
    DashLh table(rec, 64);
    unsigned found = 0;
    const unsigned n = 400;
    for (unsigned i = 0; i < n; ++i)
        table.insert(i % 4, makeKey(i), hash64(i));
    for (unsigned i = 0; i < n; ++i)
        found += table.search(0, makeKey(i)) == hash64(i) ? 1 : 0;
    // Rehash displacement may strand a small fraction outside the
    // probe buckets.
    EXPECT_GE(found, n * 9 / 10);
    EXPECT_GT(table.rehashes(), 0u);
}

TEST(Part, InsertSearch)
{
    TraceRecorder rec(4, 1);
    Part tree(rec);
    insertSearchRoundTrip(tree, 800);
}

TEST(Part, UpdateInPlace)
{
    TraceRecorder rec(4, 1);
    Part tree(rec);
    tree.insert(0, makeKey(5), 1);
    tree.insert(1, makeKey(5), 2);
    EXPECT_EQ(tree.search(0, makeKey(5)), 2u);
}

TEST(Part, GrowsNode16ToNode256)
{
    TraceRecorder rec(4, 1);
    Part tree(rec);
    insertSearchRoundTrip(tree, 3000);
    EXPECT_GT(tree.grows(), 0u);
}

TEST(PMasstree, InsertSearchSplits)
{
    TraceRecorder rec(4, 1);
    PMasstree tree(rec);
    insertSearchRoundTrip(tree, 800);
    EXPECT_GT(tree.splits(), 0u);
}

TEST(PMasstree, UpdateInPlace)
{
    TraceRecorder rec(4, 1);
    PMasstree tree(rec);
    tree.insert(0, makeKey(3), 30);
    tree.insert(1, makeKey(3), 31);
    EXPECT_EQ(tree.search(2, makeKey(3)), 31u);
}

// --------------------------------------------------------- registry

TEST(Registry, HasAllTableIIIWorkloads)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 14u);
    EXPECT_NO_THROW(findWorkload("cceh"));
    EXPECT_NO_THROW(findWorkload("p-masstree"));
}

TEST(RegistryDeath, UnknownWorkloadFatal)
{
    EXPECT_DEATH(findWorkload("nope"), "unknown workload");
}

// ------------------------------------------- trace well-formedness

class TraceWellFormed : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TraceWellFormed, Invariants)
{
    setLogQuiet(true);
    WorkloadParams p;
    p.opsPerThread = 40;
    const unsigned threads = 4;
    TraceSet ts = buildTrace(GetParam(), threads, p);
    ASSERT_EQ(ts.threads.size(), threads);

    std::set<std::uint64_t> tokens;
    std::vector<std::uint64_t> releases(threads, 0);

    // First pass: count releases per thread.
    for (unsigned t = 0; t < threads; ++t) {
        for (const TraceOp &op : ts.threads[t]) {
            if (op.type == OpType::Release)
                ++releases[t];
        }
    }

    for (unsigned t = 0; t < threads; ++t) {
        const auto &ops = ts.threads[t];
        ASSERT_FALSE(ops.empty());
        EXPECT_EQ(ops.back().type, OpType::End);
        int lock_depth = 0;
        unsigned pm_stores = 0;
        for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
            const TraceOp &op = ops[i];
            EXPECT_NE(op.type, OpType::End) << "End only at the end";
            switch (op.type) {
              case OpType::Store:
                if (op.isPm) {
                    ++pm_stores;
                    EXPECT_NE(op.value, 0u);
                    EXPECT_TRUE(tokens.insert(op.value).second)
                        << "duplicate store token";
                    EXPECT_TRUE(isPmAddr(op.addr));
                }
                break;
              case OpType::Load:
                if (op.isPm)
                    EXPECT_TRUE(isPmAddr(op.addr));
                break;
              case OpType::Acquire:
                ++lock_depth;
                if (op.srcThread >= 0) {
                    ASSERT_LT(static_cast<unsigned>(op.srcThread),
                              threads);
                    EXPECT_GE(op.srcRelease, 1u);
                    EXPECT_LE(op.srcRelease,
                              releases[static_cast<unsigned>(
                                  op.srcThread)])
                        << "edge to a release that never happens";
                }
                break;
              case OpType::Release:
                --lock_depth;
                EXPECT_GE(lock_depth, 0);
                break;
              case OpType::Compute:
                EXPECT_GT(op.cycles, 0u);
                break;
              default:
                break;
            }
        }
        EXPECT_EQ(lock_depth, 0) << "unbalanced locks on thread " << t;
        EXPECT_GT(pm_stores, 0u) << "every workload writes PM";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TraceWellFormed,
    ::testing::Values("nstore", "echo", "vacation", "memcached",
                      "heap", "queue", "skiplist", "cceh", "fast_fair",
                      "dash-lh", "dash-eh", "p-art", "p-clht",
                      "p-masstree"));

TEST(Synthetic, BandwidthAlternatesMcs)
{
    TraceRecorder rec(1, 1);
    genBandwidthMicrobench(rec, 8);
    TraceSet ts = rec.finish();
    // Each burst is 4 lines in one 256 B grain; consecutive bursts
    // land on different controllers under the default interleave.
    std::vector<std::uint64_t> grains;
    for (const TraceOp &op : ts.threads[0]) {
        if (op.type == OpType::Store)
            grains.push_back(lineOf(op.addr) / 4);
    }
    ASSERT_GE(grains.size(), 8u);
    EXPECT_NE(grains[0] % 2, grains[4] % 2)
        << "consecutive bursts alternate controllers";
}

TEST(Synthetic, DeterministicForSameSeed)
{
    WorkloadParams p;
    p.opsPerThread = 20;
    TraceSet a = buildTrace("cceh", 4, p);
    TraceSet b = buildTrace("cceh", 4, p);
    ASSERT_EQ(a.totalOps(), b.totalOps());
    for (unsigned t = 0; t < 4; ++t) {
        for (std::size_t i = 0; i < a.threads[t].size(); ++i) {
            EXPECT_EQ(a.threads[t][i].type, b.threads[t][i].type);
            EXPECT_EQ(a.threads[t][i].addr, b.threads[t][i].addr);
        }
    }
}

} // namespace
} // namespace asap
