/**
 * @file
 * Tests for the CACTI-lite hardware cost model: Table V agreement
 * within tolerance, physical scaling behaviour, drain-size claims.
 */

#include <gtest/gtest.h>

#include "costmodel/cacti_lite.hh"

namespace asap
{
namespace
{

void
expectNear(double model, double paper, double rel_tol,
           const char *what)
{
    EXPECT_NEAR(model, paper, paper * rel_tol) << what;
}

TEST(CostModel, TableVPersistBuffer)
{
    const CostEstimate e = estimateCost(persistBufferSpec(SimConfig{}));
    expectNear(e.areaMm2, 0.093, 0.10, "PB area");
    expectNear(e.accessNs, 0.402, 0.10, "PB latency");
    expectNear(e.writePj, 30.0, 0.10, "PB write energy");
    expectNear(e.readPj, 28.876, 0.10, "PB read energy");
}

TEST(CostModel, TableVEpochTable)
{
    const CostEstimate e = estimateCost(epochTableSpec(SimConfig{}));
    expectNear(e.areaMm2, 0.006, 0.25, "ET area");
    expectNear(e.accessNs, 0.185, 0.10, "ET latency");
    expectNear(e.writePj, 0.428, 0.25, "ET write energy");
    expectNear(e.readPj, 0.092, 0.25, "ET read energy");
}

TEST(CostModel, TableVRecoveryTable)
{
    const CostEstimate e = estimateCost(recoveryTableSpec(SimConfig{}));
    expectNear(e.areaMm2, 0.097, 0.10, "RT area");
    expectNear(e.accessNs, 0.413, 0.10, "RT latency");
    expectNear(e.writePj, 31.5, 0.10, "RT write energy");
}

TEST(CostModel, TableVL1Reference)
{
    const CostEstimate e = estimateCost(l1CacheSpec(SimConfig{}));
    expectNear(e.areaMm2, 0.759, 0.10, "L1 area");
    expectNear(e.accessNs, 1.403, 0.10, "L1 latency");
    expectNear(e.writePj, 327.86, 0.10, "L1 write energy");
}

TEST(CostModel, StructuresMuchSmallerThanL1)
{
    SimConfig cfg;
    const double l1 = estimateCost(l1CacheSpec(cfg)).areaMm2;
    EXPECT_LT(estimateCost(persistBufferSpec(cfg)).areaMm2, l1 / 5);
    EXPECT_LT(estimateCost(epochTableSpec(cfg)).areaMm2, l1 / 50);
    EXPECT_LT(estimateCost(recoveryTableSpec(cfg)).areaMm2, l1 / 5);
}

TEST(CostModel, ScalingIsMonotonic)
{
    SimConfig small, big;
    big.rtEntries = 128;
    const CostEstimate s = estimateCost(recoveryTableSpec(small));
    const CostEstimate b = estimateCost(recoveryTableSpec(big));
    EXPECT_GT(b.areaMm2, s.areaMm2);
    EXPECT_GT(b.accessNs, s.accessNs);
    EXPECT_GT(b.writePj, s.writePj);
}

TEST(CostModel, DrainSizesMatchSectionVIID)
{
    SimConfig cfg;
    // ASAP: ~4 kB from the recovery tables.
    EXPECT_LE(adrDrainBytes(cfg), 4.5 * 1024);
    // BBB: ~64 kB on a 32-core server.
    EXPECT_NEAR(bbbDrainBytes(cfg, 32), 64.0 * 1024, 8.0 * 1024);
    // eADR: ~42 MB of dirty cache on a 32-core server.
    const double mb = eadrDrainBytes(cfg, 32) / (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 42.0, 6.0);
}

TEST(CostModel, DrainOrderingAsapSmallest)
{
    SimConfig cfg;
    EXPECT_LT(adrDrainBytes(cfg), bbbDrainBytes(cfg, 32));
    EXPECT_LT(bbbDrainBytes(cfg, 32), eadrDrainBytes(cfg, 32));
}

} // namespace
} // namespace asap
