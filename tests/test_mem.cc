/**
 * @file
 * Unit tests for the memory substrate: address interleaving, WPQ,
 * XPBuffer, NVM contents and the memory controller's timing and
 * crash behaviour.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/nvm_contents.hh"
#include "mem/wpq.hh"
#include "mem/xpbuffer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

// ----------------------------------------------------------- address map

TEST(AddressMap, InterleavesAtGrain)
{
    AddressMap amap(2, 256); // 256 B = 4 lines per grain
    EXPECT_EQ(amap.mcFor(0), 0u);
    EXPECT_EQ(amap.mcFor(3), 0u);
    EXPECT_EQ(amap.mcFor(4), 1u);
    EXPECT_EQ(amap.mcFor(7), 1u);
    EXPECT_EQ(amap.mcFor(8), 0u);
}

TEST(AddressMap, SingleMc)
{
    AddressMap amap(1, 256);
    for (std::uint64_t l = 0; l < 100; ++l)
        EXPECT_EQ(amap.mcFor(l), 0u);
}

TEST(AddressMap, FourWay)
{
    AddressMap amap(4, 64); // line-grained across 4 MCs
    EXPECT_EQ(amap.mcFor(0), 0u);
    EXPECT_EQ(amap.mcFor(1), 1u);
    EXPECT_EQ(amap.mcFor(2), 2u);
    EXPECT_EQ(amap.mcFor(3), 3u);
    EXPECT_EQ(amap.mcFor(4), 0u);
}

TEST(AddressMap, BalancedDistribution)
{
    AddressMap amap(2, 256);
    unsigned counts[2] = {0, 0};
    for (std::uint64_t l = 0; l < 1024; ++l)
        ++counts[amap.mcFor(l)];
    EXPECT_EQ(counts[0], counts[1]);
}

// ------------------------------------------------------------------- wpq

TEST(Wpq, InsertAndDrainFifo)
{
    Wpq w(4);
    EXPECT_EQ(w.insert(1, 10), Wpq::Insert::Queued);
    EXPECT_EQ(w.insert(2, 20), Wpq::Insert::Queued);
    EXPECT_EQ(w.front().line, 1u);
    w.pop();
    EXPECT_EQ(w.front().line, 2u);
    w.pop();
    EXPECT_TRUE(w.empty());
}

TEST(Wpq, CoalescesSameLine)
{
    Wpq w(4);
    w.insert(7, 100);
    EXPECT_EQ(w.insert(7, 200), Wpq::Insert::Coalesced);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_EQ(w.pendingValue(7), 200u);
}

TEST(Wpq, FullRejects)
{
    Wpq w(2);
    w.insert(1, 1);
    w.insert(2, 2);
    EXPECT_EQ(w.insert(3, 3), Wpq::Insert::Full);
    EXPECT_TRUE(w.full());
    // Coalescing still works when full.
    EXPECT_EQ(w.insert(1, 9), Wpq::Insert::Coalesced);
}

TEST(Wpq, ExtraLatencyKeepsMax)
{
    Wpq w(4);
    w.insert(5, 1, 100);
    w.insert(5, 2, 40);
    EXPECT_EQ(w.front().extraLatency, 100u);
    w.insert(6, 3, 7);
    w.pop();
    EXPECT_EQ(w.front().extraLatency, 7u);
}

TEST(Wpq, DrainAllReturnsEverything)
{
    Wpq w(8);
    w.insert(1, 10);
    w.insert(2, 20);
    auto drained = w.drainAll();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].first, 1u);
    EXPECT_EQ(drained[1].second, 20u);
    EXPECT_TRUE(w.empty());
}

TEST(Wpq, PointerStabilityUnderChurn)
{
    Wpq w(16);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        if (w.full())
            w.pop();
        w.insert(i % 24, i);
        if (w.contains(i % 24))
            EXPECT_EQ(w.pendingValue(i % 24), i);
    }
}

// -------------------------------------------------------------- xpbuffer

TEST(XpBuffer, HitAfterTouch)
{
    XpBuffer xp(4);
    EXPECT_FALSE(xp.hit(1));
    xp.touch(1);
    EXPECT_TRUE(xp.hit(1));
}

TEST(XpBuffer, LruEviction)
{
    XpBuffer xp(2);
    xp.touch(1);
    xp.touch(2);
    xp.touch(3); // evicts 1
    EXPECT_FALSE(xp.hit(1));
    EXPECT_TRUE(xp.hit(2));
    EXPECT_TRUE(xp.hit(3));
}

TEST(XpBuffer, TouchRefreshesRecency)
{
    XpBuffer xp(2);
    xp.touch(1);
    xp.touch(2);
    xp.touch(1); // 2 is now LRU
    xp.touch(3); // evicts 2
    EXPECT_TRUE(xp.hit(1));
    EXPECT_FALSE(xp.hit(2));
}

TEST(XpBuffer, ZeroCapacityNeverHits)
{
    XpBuffer xp(0);
    xp.touch(1);
    EXPECT_FALSE(xp.hit(1));
}

// ---------------------------------------------------------- nvm contents

TEST(NvmContents, ReadBackAndPresence)
{
    NvmContents nvm;
    EXPECT_EQ(nvm.read(42), 0u);
    EXPECT_FALSE(nvm.present(42));
    nvm.write(42, 7);
    EXPECT_EQ(nvm.read(42), 7u);
    EXPECT_TRUE(nvm.present(42));
    nvm.write(42, 9);
    EXPECT_EQ(nvm.read(42), 9u);
}

// ------------------------------------------------------ memory controller

struct McFixture : public ::testing::Test
{
    SimConfig cfg;
    EventQueue eq;
    NvmContents media;
    StatSet stats;

    McFixture() { setLogQuiet(true); }

    MemoryController
    make(unsigned id = 0)
    {
        return MemoryController(id, cfg, eq, media, stats);
    }
};

TEST_F(McFixture, SafeFlushPersistsAndAcks)
{
    MemoryController mc = make();
    bool acked = false;
    mc.receiveFlush(FlushPacket{10, 77, 0, 1, false},
                    [&](FlushReply r) {
                        acked = true;
                        EXPECT_EQ(r, FlushReply::Ack);
                    });
    eq.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(media.read(10), 77u);
    EXPECT_EQ(stats.get("mc.pmWrites"), 1u);
}

TEST_F(McFixture, AckWaitsForWpqSpace)
{
    cfg.wpqEntries = 2;
    cfg.nvmBanks = 1;
    MemoryController mc = make();
    unsigned acks = 0;
    for (std::uint64_t i = 0; i < 6; ++i) {
        mc.receiveFlush(FlushPacket{100 + i, i, 0, 1, false},
                        [&](FlushReply) { ++acks; });
    }
    // Some flushes must wait for WPQ drain before being accepted.
    EXPECT_LT(acks, 6u);
    eq.run();
    EXPECT_EQ(acks, 6u);
    EXPECT_EQ(stats.get("mc.pmWrites"), 6u);
    EXPECT_GT(stats.get("mc.wpqFullStalls"), 0u);
}

TEST_F(McFixture, WpqCoalescingReducesMediaWrites)
{
    cfg.nvmBanks = 1;
    MemoryController mc = make();
    for (int i = 0; i < 4; ++i) {
        mc.receiveFlush(FlushPacket{55, std::uint64_t(i), 0, 1, false},
                        [](FlushReply) {});
    }
    eq.run();
    EXPECT_EQ(media.read(55), 3u); // latest value
    EXPECT_LT(stats.get("mc.pmWrites"), 4u);
    EXPECT_GT(stats.get("mc.wpqCoalesced"), 0u);
}

TEST_F(McFixture, EarlyFlushWithoutPolicyPanics)
{
    MemoryController mc = make();
    EXPECT_DEATH(mc.receiveFlush(FlushPacket{1, 1, 0, 1, true},
                                 [](FlushReply) {}),
                 "no.*recovery policy|recovery policy");
}

TEST_F(McFixture, CrashDrainsWpqToMedia)
{
    cfg.nvmBanks = 1;
    cfg.pmWriteLatency = 100000; // writes never retire on their own
    MemoryController mc = make();
    for (std::uint64_t i = 0; i < 4; ++i) {
        mc.receiveFlush(FlushPacket{200 + i, 900 + i, 0, 1, false},
                        [](FlushReply) {});
    }
    // Run a moment so packets enter the WPQ but not the media.
    eq.run(1000);
    mc.crash();
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(media.read(200 + i), 900 + i);
}

TEST_F(McFixture, DurableValuePrefersWpq)
{
    cfg.pmWriteLatency = 100000;
    cfg.nvmBanks = 1;
    media.write(5, 1);
    MemoryController mc = make();
    mc.receiveFlush(FlushPacket{5, 2, 0, 1, false}, [](FlushReply) {});
    eq.run(10); // enough to insert, not to retire (bank issue is
                // instantaneous, so the media may already be updated)
    EXPECT_EQ(mc.durableValue(5), 2u);
}

TEST_F(McFixture, BankParallelismBoundsThroughput)
{
    cfg.nvmBanks = 2;
    cfg.wpqEntries = 16;
    MemoryController mc = make();
    for (std::uint64_t i = 0; i < 8; ++i)
        mc.receiveFlush(FlushPacket{300 + i, i, 0, 1, false},
                        [](FlushReply) {});
    eq.run();
    // 8 writes over 2 banks at 180 cycles each: at least 4 service
    // slots back to back.
    EXPECT_GE(eq.now(), 4 * cfg.pmWriteLatency);
}

} // namespace
} // namespace asap
