/**
 * @file
 * Tests for the pluggable media-model subsystem (src/media/):
 * profile registry, parameter resolution and overrides, the
 * bandwidth-cap queueing model, byte-identity of the default
 * `paper-table2` profile against seed-captured figure CSV rows,
 * cache-key separation between profiles, deterministic parallel
 * media sweeps, manifest round-trips and crash consistency on
 * non-default media.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/cache.hh"
#include "exp/crash_campaign.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "exp/sweep.hh"
#include "dist/manifest.hh"
#include "media/media.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

WorkloadParams
params30()
{
    WorkloadParams p;
    p.opsPerThread = 30;
    p.seed = 1;
    return p;
}

class MediaTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

TEST_F(MediaTest, RegistryListsAllProfilesAndResolvesEach)
{
    const std::vector<MediaProfileInfo> &profiles = allMediaProfiles();
    ASSERT_GE(profiles.size(), 6u);
    EXPECT_EQ(profiles.front().name, std::string(kDefaultMediaProfile));
    for (const MediaProfileInfo &info : profiles) {
        EXPECT_TRUE(isMediaProfile(info.name)) << info.name;
        EXPECT_FALSE(info.description.empty()) << info.name;
        SimConfig cfg;
        cfg.mediaProfile = info.name;
        const MediaParams p = resolveMediaParams(cfg);
        EXPECT_EQ(p.profile, info.name);
        EXPECT_GT(p.readLatency, 0u) << info.name;
        EXPECT_GT(p.writeLatency, 0u) << info.name;
        EXPECT_GT(p.banks, 0u) << info.name;
        EXPECT_GE(p.writeGBps, 0.0) << info.name;
    }
    EXPECT_FALSE(isMediaProfile("no-such-media"));
}

TEST_F(MediaTest, PaperProfileTracksLegacyKnobs)
{
    SimConfig cfg;
    cfg.pmReadLatency = 1234;
    cfg.pmWriteLatency = 567;
    cfg.nvmBanks = 24;
    cfg.xpBufferHitLatency = 21;
    cfg.dramLatency = 99;
    const MediaParams p = resolveMediaParams(cfg);
    EXPECT_EQ(p.readLatency, 1234u);
    EXPECT_EQ(p.writeLatency, 567u);
    EXPECT_EQ(p.banks, 24u);
    EXPECT_EQ(p.hitLatency, 21u);
    EXPECT_EQ(p.dramFillLatency, 99u);
    EXPECT_DOUBLE_EQ(p.writeGBps, 0.0); // uncapped, as in the seed
}

TEST_F(MediaTest, MediaOverridesBeatProfileDefaults)
{
    SimConfig cfg;
    cfg.mediaProfile = "slow-nvm";
    cfg.mediaReadLatency = 42;
    cfg.mediaBanks = 7;
    cfg.mediaWriteGBps = 0.0; // explicit uncap
    const MediaParams p = resolveMediaParams(cfg);
    EXPECT_EQ(p.readLatency, 42u);
    EXPECT_EQ(p.banks, 7u);
    EXPECT_DOUBLE_EQ(p.writeGBps, 0.0);
    // Untouched fields keep the profile's values.
    EXPECT_EQ(p.writeLatency, nsToTicks(600));
}

TEST_F(MediaTest, ConfigOverrideStringsReachMediaKnobs)
{
    SimConfig cfg;
    cfg.override("media=cxl-flash");
    EXPECT_EQ(cfg.mediaProfile, "cxl-flash");
    cfg.override("mediaWriteLatency=777");
    EXPECT_EQ(cfg.mediaWriteLatency, 777u);
    cfg.override("mediaWriteGBps=2.5");
    EXPECT_DOUBLE_EQ(cfg.mediaWriteGBps, 2.5);
}

TEST_F(MediaTest, BandwidthCapQueuesWrites)
{
    // slow-nvm: 1 GB/s cap at 2 GHz = 2 cycles/byte, so one 64 B
    // line occupies the media pipeline for 128 cycles.
    SimConfig cfg;
    cfg.mediaProfile = "slow-nvm";
    std::unique_ptr<MediaModel> m = makeMediaModel(cfg);
    const Tick service = m->params().writeLatency;

    const MediaModel::WriteGrant g0 = m->startWrite(0, 64);
    EXPECT_EQ(g0.queueDelay, 0u);
    EXPECT_EQ(g0.serviceLatency, service);

    // Issued at the same instant: waits for the first line's slot.
    const MediaModel::WriteGrant g1 = m->startWrite(0, 64);
    EXPECT_EQ(g1.queueDelay, 128u);
    EXPECT_EQ(g1.serviceLatency, service + 128);

    // Issued after the pipeline drained: no delay again.
    const MediaModel::WriteGrant g2 = m->startWrite(1000, 64);
    EXPECT_EQ(g2.queueDelay, 0u);
    EXPECT_EQ(g2.serviceLatency, service);
}

TEST_F(MediaTest, UncappedProfileNeverQueues)
{
    SimConfig cfg; // paper-table2: no cap
    std::unique_ptr<MediaModel> m = makeMediaModel(cfg);
    for (Tick t = 0; t < 4; ++t) {
        const MediaModel::WriteGrant g = m->startWrite(0, 64);
        EXPECT_EQ(g.queueDelay, 0u);
        EXPECT_EQ(g.serviceLatency, cfg.pmWriteLatency);
    }
}

/**
 * Byte-identity of the default profile: these rows were captured from
 * the pre-media seed's fig02/fig08 CSV artifacts (`--ops 30`,
 * seed 1). The media subsystem must reproduce them exactly — schema
 * included (no media columns on a default-profile sweep).
 */
TEST_F(MediaTest, PaperProfileByteIdenticalToSeedFigureRows)
{
    SweepSpec spec;
    spec.workloads = {"echo", "cceh"};
    spec.models = {{ModelKind::Baseline, PersistencyModel::Release},
                   {ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.params = params30();

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runSweep(spec, opt);

    std::ostringstream csv;
    emitCsv(csv, sr);
    const std::string expected =
        "workload,model,persistency,cores,seed,opsPerThread,runTicks,"
        "pmWrites,pmReads,cyclesBlocked,cyclesStalled,dfenceStalled,"
        "sfenceStalled,entriesInserted,epochs,crossDeps,totSpecWrites,"
        "totalUndo,totalDelay,nacks,rtMaxOccupancy,pbOccMean,pbOccP99,"
        "wpqCoalesced,suppressedWrites\n"
        // seed fig08.csv rows (baseline/HOPS), seed fig02.csv (ASAP).
        // The kernel-v4 same-tick tie-break (creator-domain send
        // counters, kCodeSalt asap-sim-v4) nudged pbOccMean on the two
        // cceh rows below; every integer stat matches the seed rows.
        "echo,baseline,rp,4,1,30,26149,298,0,0,0,0,30720,0,0,0,0,0,0,"
        "0,0,0,0,0,0\n"
        "echo,hops,rp,4,1,30,18465,298,0,16108,0,1008,0,409,412,48,0,"
        "0,0,0,0,0.841653,3,111,0\n"
        "echo,asap,rp,4,1,30,18465,300,172,0,0,1008,0,418,412,48,172,"
        "172,0,0,5,0.67028,3,118,0\n"
        "cceh,baseline,rp,4,1,30,90986,110,0,0,0,0,14080,0,0,0,0,0,0,"
        "0,0,0,0,0,0\n"
        "cceh,hops,rp,4,1,30,89176,109,0,24676,0,6138,0,148,319,95,0,"
        "0,0,0,0,0.105887,2,39,0\n"
        "cceh,asap,rp,4,1,30,87376,110,32,0,0,1108,0,220,319,95,52,"
        "47,5,0,3,0.041141,1,110,0\n";
    EXPECT_EQ(csv.str(), expected);
}

TEST_F(MediaTest, DistinctProfilesYieldDistinctJobKeys)
{
    std::vector<std::string> keys;
    for (const MediaProfileInfo &info : allMediaProfiles()) {
        ExperimentJob job;
        job.workload = "queue";
        job.cfg.mediaProfile = info.name;
        job.params = params30();
        keys.push_back(jobKey(job));
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j])
                << allMediaProfiles()[i].name << " aliases "
                << allMediaProfiles()[j].name;
    }
    // Overrides reach the key too.
    ExperimentJob job;
    job.workload = "queue";
    job.params = params30();
    const std::string base = jobKey(job);
    job.cfg.mediaWriteGBps = 3.0;
    EXPECT_NE(jobKey(job), base);
}

TEST_F(MediaTest, TwoProfileSweepDeterministicAcrossJobCounts)
{
    SweepSpec spec;
    spec.workloads = {"queue", "echo"};
    spec.mediaProfiles = {kDefaultMediaProfile, "slow-nvm"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = params30();
    ASSERT_EQ(spec.jobCount(), 4u);

    ResultCache serialCache, parallelCache;
    RunOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    RunOptions parallel;
    parallel.jobs = 8;
    parallel.cache = &parallelCache;

    const SweepResult s = runSweep(spec, serial);
    const SweepResult p = runSweep(spec, parallel);
    ASSERT_EQ(s.results.size(), p.results.size());
    for (std::size_t i = 0; i < s.results.size(); ++i) {
        EXPECT_EQ(s.at(i).media, p.at(i).media);
        EXPECT_EQ(s.at(i).runTicks, p.at(i).runTicks);
        EXPECT_EQ(s.at(i).pmWrites, p.at(i).pmWrites);
        EXPECT_EQ(s.at(i).mediaBytesWritten, p.at(i).mediaBytesWritten);
        EXPECT_EQ(s.at(i).mediaQueueDelayTicks,
                  p.at(i).mediaQueueDelayTicks);
        EXPECT_EQ(s.at(i).mediaBankBusyTicks,
                  p.at(i).mediaBankBusyTicks);
        EXPECT_EQ(s.at(i).xpHits, p.at(i).xpHits);
        EXPECT_EQ(s.at(i).xpMisses, p.at(i).xpMisses);
    }

    // The media actually matters: the bandwidth-starved profile is
    // slower than the paper's on the write-heavy queue workload, and
    // only media columns distinguish the two — same workload, model
    // and cores.
    EXPECT_EQ(s.at(0).media, std::string(kDefaultMediaProfile));
    EXPECT_EQ(s.at(1).media, "slow-nvm");
    EXPECT_NE(s.at(0).runTicks, s.at(1).runTicks);
}

TEST_F(MediaTest, MediaColumnsAppearOnlyWithNonDefaultProfiles)
{
    SweepSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = params30();

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;

    const SweepResult plain = runSweep(spec, opt);
    EXPECT_FALSE(plain.hasNonDefaultMedia());
    std::ostringstream plainCsv, plainJson;
    emitCsv(plainCsv, plain);
    emitJson(plainJson, plain);
    EXPECT_EQ(plainCsv.str().find("media"), std::string::npos);
    EXPECT_EQ(plainJson.str().find("\"media\""), std::string::npos);

    spec.mediaProfiles = {kDefaultMediaProfile, "dram"};
    const SweepResult mixed = runSweep(spec, opt);
    EXPECT_TRUE(mixed.hasNonDefaultMedia());
    std::ostringstream mixedCsv, mixedJson;
    emitCsv(mixedCsv, mixed);
    emitJson(mixedJson, mixed);
    EXPECT_NE(mixedCsv.str().find(",media,"), std::string::npos);
    EXPECT_NE(mixedCsv.str().find("mediaBytesWritten"),
              std::string::npos);
    EXPECT_NE(mixedJson.str().find("\"media\": \"dram\""),
              std::string::npos);
    EXPECT_NE(mixedJson.str().find("\"mediaQueueDelayTicks\""),
              std::string::npos);
}

TEST_F(MediaTest, CacheEntrySurvivesMediaFieldsRoundTrip)
{
    RunResult r;
    r.workload = "queue";
    r.model = ModelKind::Asap;
    r.persistency = PersistencyModel::Release;
    r.cores = 4;
    r.media = "cxl-flash";
    r.runTicks = 123456;
    r.xpHits = 17;
    r.xpMisses = 4;
    r.mediaBytesWritten = 8192;
    r.mediaQueueDelayTicks = 999;
    r.mediaBankBusyTicks = 31337;

    RunResult back;
    ASSERT_TRUE(deserializeResult(serializeResult(r), back));
    EXPECT_EQ(back.media, r.media);
    EXPECT_EQ(back.xpHits, r.xpHits);
    EXPECT_EQ(back.xpMisses, r.xpMisses);
    EXPECT_EQ(back.mediaBytesWritten, r.mediaBytesWritten);
    EXPECT_EQ(back.mediaQueueDelayTicks, r.mediaQueueDelayTicks);
    EXPECT_EQ(back.mediaBankBusyTicks, r.mediaBankBusyTicks);
}

TEST_F(MediaTest, ManifestJobCarriesMediaProfile)
{
    ExperimentJob job;
    job.workload = "cceh";
    job.cfg.mediaProfile = "optane-dcpmm";
    job.cfg.model = ModelKind::Asap;
    job.params = params30();

    const ManifestJob mj = toManifestJob(job, jobKey(job));
    EXPECT_EQ(mj.media, "optane-dcpmm");

    ShardManifest m;
    m.shard.index = 0;
    m.shard.count = 1;
    m.sweep = "cafebabe";
    m.jobs.push_back(mj);
    ShardManifest back;
    std::string why;
    ASSERT_TRUE(deserializeManifest(serializeManifest(m), back, &why))
        << why;
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].media, "optane-dcpmm");
    EXPECT_EQ(toExperimentJob(back.jobs[0]).cfg.mediaProfile,
              "optane-dcpmm");
}

TEST_F(MediaTest, CrashCampaignConsistentOnNonDefaultMedia)
{
    CampaignSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = params30();
    spec.ticksPerConfig = 8;
    spec.base.mediaProfile = "cxl-flash";

    ResultCache cache;
    RunOptions opt;
    opt.jobs = 2;
    opt.cache = &cache;
    const CampaignResult cr = runCampaign(spec, opt);
    EXPECT_EQ(cr.crashPoints(), 8u);
    EXPECT_TRUE(cr.allConsistent());
    for (const ExperimentJob &j : cr.sweep.jobs)
        EXPECT_EQ(j.cfg.mediaProfile, "cxl-flash");
    // Non-default media shows up in the repro line.
    ASSERT_FALSE(cr.sweep.jobs.empty());
    EXPECT_NE(reproCommand(cr.sweep.jobs.front())
                  .find("--media cxl-flash"),
              std::string::npos);
}

} // namespace
} // namespace asap
