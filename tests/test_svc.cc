/**
 * @file
 * Tests for the sweep service (src/svc/): JSON exactness, frame
 * robustness against truncated/oversized/garbage input, the
 * full-fidelity job codec (wire jobKey == local jobKey), priority +
 * fair-share scheduling, and the end-to-end daemon guarantees —
 * byte-identical artifacts vs the batch path, 100%-hit warm
 * resubmits, mid-sweep cancellation, concurrent clients, probe-phase
 * memoization, and emergency lease release on fatal signals.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "dist/lease.hh"
#include "exp/cache.hh"
#include "exp/crash_campaign.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/json.hh"
#include "svc/protocol.hh"
#include "svc/scheduler.hh"
#include "svc/wire.hh"

namespace asap
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

WorkloadParams
tinyParams(unsigned ops = 20, std::uint64_t seed = 7)
{
    WorkloadParams p;
    p.opsPerThread = ops;
    p.seed = seed;
    return p;
}

/** A small cross-product sweep (with an intra-sweep duplicate). */
std::vector<ExperimentJob>
sampleJobs(unsigned ops = 20, std::uint64_t seed = 7)
{
    SweepSpec spec;
    spec.workloads = {"queue", "skiplist"};
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {2};
    spec.params = tinyParams(ops, seed);
    std::vector<ExperimentJob> jobs = spec.expand();
    jobs.push_back(jobs.front()); // duplicate: follows its leader
    return jobs;
}

std::string
csvOf(const SweepResult &sr)
{
    std::ostringstream os;
    emitCsv(os, sr);
    return os.str();
}

// ---------------------------------------------------------------- Json

TEST(SvcJson, U64RoundTripsExactly)
{
    // 2^64-1 is outside double precision; a one-ULP wobble would
    // change job cache keys, so numbers must survive as text.
    const std::uint64_t big = 18446744073709551615ull;
    Json v = Json::object();
    v.set("maxRunTicks", Json::number(big));
    const std::string text = v.dump();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);

    Json back;
    ASSERT_TRUE(Json::parse(text, back));
    EXPECT_EQ(back.get("maxRunTicks").asU64(), big);
    EXPECT_EQ(back.dump(), text); // literal preserved, not re-rendered
}

TEST(SvcJson, ObjectsSerializeInInsertionOrder)
{
    Json v = Json::object();
    v.set("zebra", Json::number(std::uint64_t{1}));
    v.set("alpha", Json::number(std::uint64_t{2}));
    EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(SvcJson, ParserRejectsMalformedInput)
{
    Json out;
    std::string why;
    EXPECT_FALSE(Json::parse("", out, &why));
    EXPECT_FALSE(Json::parse("{", out, &why));
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", out, &why));
    EXPECT_FALSE(Json::parse("{\"a\":}", out, &why));
    EXPECT_FALSE(Json::parse("\"bad \\q escape\"", out, &why));
    EXPECT_FALSE(Json::parse("nulll", out, &why));

    // Depth bomb: deeper than the parser's limit must fail cleanly.
    std::string deep(64, '[');
    deep += std::string(64, ']');
    EXPECT_FALSE(Json::parse(deep, out, &why));
    EXPECT_FALSE(why.empty());
}

TEST(SvcJson, StringEscapesRoundTrip)
{
    Json v = Json::str(std::string("tab\there \"q\" \n\x01") + "\xE2\x82\xAC");
    Json back;
    ASSERT_TRUE(Json::parse(v.dump(), back));
    EXPECT_EQ(back.asString(), v.asString());
}

// ------------------------------------------------------------- framing

struct SocketPair
{
    int a = -1, b = -1;
    SocketPair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(SvcFraming, RoundTrip)
{
    SocketPair sp;
    const std::string msg = "{\"op\":\"ping\"}";
    ASSERT_EQ(writeFrame(sp.a, msg, 1000), FrameStatus::Ok);
    std::string got;
    ASSERT_EQ(readFrame(sp.b, got, 1000), FrameStatus::Ok);
    EXPECT_EQ(got, msg);

    // Empty payload is a legal frame.
    ASSERT_EQ(writeFrame(sp.a, "", 1000), FrameStatus::Ok);
    ASSERT_EQ(readFrame(sp.b, got, 1000), FrameStatus::Ok);
    EXPECT_EQ(got, "");
}

TEST(SvcFraming, CleanCloseIsEof)
{
    SocketPair sp;
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    EXPECT_EQ(readFrame(sp.b, got, 1000), FrameStatus::Eof);
}

TEST(SvcFraming, TruncatedPayloadIsError)
{
    SocketPair sp;
    const std::uint32_t len = 10;
    unsigned char hdr[4] = {static_cast<unsigned char>(len), 0, 0, 0};
    ASSERT_EQ(::send(sp.a, hdr, 4, 0), 4);
    ASSERT_EQ(::send(sp.a, "abc", 3, 0), 3);
    ::close(sp.a); // die mid-frame
    sp.a = -1;
    std::string got;
    EXPECT_EQ(readFrame(sp.b, got, 1000), FrameStatus::Error);
}

TEST(SvcFraming, TruncatedLengthPrefixIsError)
{
    SocketPair sp;
    ASSERT_EQ(::send(sp.a, "\x05\x00", 2, 0), 2);
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    EXPECT_EQ(readFrame(sp.b, got, 1000), FrameStatus::Error);
}

TEST(SvcFraming, OversizedLengthIsRejectedBeforeAllocation)
{
    SocketPair sp;
    unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff}; // ~4 GiB claim
    ASSERT_EQ(::send(sp.a, hdr, 4, 0), 4);
    std::string got;
    EXPECT_EQ(readFrame(sp.b, got, 1000), FrameStatus::TooLarge);
}

TEST(SvcFraming, SilentPeerTimesOut)
{
    SocketPair sp;
    std::string got;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(readFrame(sp.b, got, 50), FrameStatus::Timeout);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(waited, 5.0); // returned promptly, no indefinite block
}

TEST(SvcFraming, ListenRejectsLiveListenerReclaimsStaleFile)
{
    const std::string dir = scratchDir("svc_listen_test");
    const std::string path = dir + "/d.sock";

    std::string why;
    const int fd1 = listenUnix(path, &why);
    ASSERT_GE(fd1, 0) << why;

    // A second daemon on the same path must be refused.
    EXPECT_LT(listenUnix(path, &why), 0);
    EXPECT_FALSE(why.empty());

    // A dead daemon leaves the socket file behind; the next listen
    // reclaims it (nothing accepts there anymore).
    ::close(fd1);
    const int fd2 = listenUnix(path, &why);
    EXPECT_GE(fd2, 0) << why;
    if (fd2 >= 0)
        ::close(fd2);
}

// ---------------------------------------------------------------- wire

TEST(SvcWire, JobKeySurvivesTheWire)
{
    std::vector<ExperimentJob> jobs = sampleJobs();

    // Edge values the codec must not wobble: a crash job, the u64
    // maxRunTicks default (2^64-1), and a negative sentinel double.
    ExperimentJob crash = jobs.front();
    crash.kind = JobKind::Crash;
    crash.crashTick = 123456789;
    jobs.push_back(crash);
    ExperimentJob sentinel = jobs[1];
    sentinel.cfg.mediaWriteGBps = -1.0;
    jobs.push_back(sentinel);

    for (const ExperimentJob &job : jobs) {
        const Json v = jobToJson(job);
        Json parsed;
        ASSERT_TRUE(Json::parse(v.dump(), parsed));
        ExperimentJob back;
        std::string why;
        ASSERT_TRUE(jobFromJson(parsed, back, &why)) << why;
        EXPECT_EQ(jobKey(back), jobKey(job))
            << "codec changed the canonical job text for "
            << describeJob(job);
    }
}

TEST(SvcWire, RejectsSemanticGarbage)
{
    const ExperimentJob good = sampleJobs().front();
    ExperimentJob out;
    std::string why;

    Json v = jobToJson(good);
    v.set("workload", Json::str("no-such-workload"));
    EXPECT_FALSE(jobFromJson(v, out, &why));

    v = jobToJson(good);
    v.set("kind", Json::str("explode"));
    EXPECT_FALSE(jobFromJson(v, out, &why));

    v = jobToJson(good);
    v.get("cfg"); // keep shape; break a semantic field
    Json cfg = v.get("cfg");
    cfg.set("model", Json::str("not-a-model"));
    v.set("cfg", cfg);
    EXPECT_FALSE(jobFromJson(v, out, &why));

    v = jobToJson(good);
    cfg = v.get("cfg");
    cfg.set("numCores", Json::number(std::uint64_t{0}));
    v.set("cfg", cfg);
    EXPECT_FALSE(jobFromJson(v, out, &why));

    v = jobToJson(good);
    cfg = v.get("cfg");
    cfg.set("mediaProfile", Json::str("unobtainium"));
    v.set("cfg", cfg);
    EXPECT_FALSE(jobFromJson(v, out, &why));

    // A crash job must carry its crash tick.
    v = jobToJson(good);
    v.set("kind", Json::str("crash"));
    EXPECT_FALSE(jobFromJson(v, out, &why));

    EXPECT_FALSE(jobFromJson(Json::number(std::uint64_t{4}), out, &why));
}

// ----------------------------------------------------------- scheduler

/** Holds the pool's single worker busy until released. */
struct WorkerGate
{
    std::promise<void> release;
    std::shared_future<void> released{release.get_future().share()};
    std::atomic<bool> entered{false};

    SchedTask task()
    {
        SchedTask t;
        t.client = "gate";
        t.fn = [this] {
            entered.store(true);
            released.wait();
        };
        return t;
    }
    void open() { release.set_value(); }
    void waitEntered()
    {
        while (!entered.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
};

SchedTask
recordingTask(const std::string &client, int priority,
              std::vector<std::string> &order, std::mutex &mu,
              const std::string &name, std::uint64_t tag = 0)
{
    SchedTask t;
    t.client = client;
    t.priority = priority;
    t.tag = tag;
    t.fn = [&order, &mu, name] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(name);
    };
    return t;
}

TEST(SvcScheduler, HighPriorityOvertakesQueuedWork)
{
    ThreadPool pool(1);
    PriorityScheduler sched(pool);
    std::vector<std::string> order;
    std::mutex mu;

    WorkerGate gate;
    sched.enqueue(gate.task());
    gate.waitEntered(); // everything below stays queued behind it

    sched.enqueue(recordingTask("a", 0, order, mu, "low1"));
    sched.enqueue(recordingTask("a", 0, order, mu, "low2"));
    sched.enqueue(recordingTask("b", 5, order, mu, "high"));

    gate.open();
    sched.drain();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "high"); // arrived last, ran first
    EXPECT_EQ(order[1], "low1");
    EXPECT_EQ(order[2], "low2");
}

TEST(SvcScheduler, EqualPriorityIsFairAcrossClients)
{
    ThreadPool pool(1);
    PriorityScheduler sched(pool);
    std::vector<std::string> order;
    std::mutex mu;

    WorkerGate gate;
    sched.enqueue(gate.task());
    gate.waitEntered();

    // Client a floods the queue first; b and c arrive after. Fair
    // share must interleave them rather than first-come-first-served.
    sched.enqueue(recordingTask("a", 0, order, mu, "a1"));
    sched.enqueue(recordingTask("a", 0, order, mu, "a2"));
    sched.enqueue(recordingTask("a", 0, order, mu, "a3"));
    sched.enqueue(recordingTask("b", 0, order, mu, "b1"));
    sched.enqueue(recordingTask("b", 0, order, mu, "b2"));
    sched.enqueue(recordingTask("c", 0, order, mu, "c1"));

    gate.open();
    sched.drain();

    const std::vector<std::string> want = {"a1", "b1", "c1",
                                           "a2", "b2", "a3"};
    EXPECT_EQ(order, want);

    const SchedStats st = sched.stats();
    EXPECT_EQ(st.queued, 0u);
    EXPECT_EQ(st.inFlight, 0u);
    EXPECT_EQ(st.completed, 7u); // 6 + the gate task
    EXPECT_EQ(st.cancelled, 0u);
}

TEST(SvcScheduler, CancelTagRemovesQueuedWorkAndNotifies)
{
    ThreadPool pool(1);
    PriorityScheduler sched(pool);
    std::vector<std::string> order;
    std::mutex mu;
    std::atomic<unsigned> cancelNotices{0};

    WorkerGate gate;
    sched.enqueue(gate.task());
    gate.waitEntered();

    for (int i = 0; i < 3; ++i) {
        SchedTask t =
            recordingTask("x", 0, order, mu, "doomed", /*tag=*/42);
        t.onCancel = [&cancelNotices] { ++cancelNotices; };
        sched.enqueue(t);
    }
    sched.enqueue(recordingTask("y", 0, order, mu, "keeper"));

    EXPECT_EQ(sched.cancelTag(42), 3u);
    EXPECT_EQ(cancelNotices.load(), 3u);
    EXPECT_EQ(sched.cancelTag(42), 0u); // idempotent

    gate.open();
    sched.drain();

    ASSERT_EQ(order.size(), 1u); // doomed tasks never ran
    EXPECT_EQ(order[0], "keeper");
    EXPECT_EQ(sched.stats().cancelled, 3u);
}

// -------------------------------------------------------------- daemon

struct DaemonFixture
{
    std::string dir;
    DaemonOptions opt;
    std::unique_ptr<Daemon> daemon;

    explicit DaemonFixture(const std::string &name, unsigned workers,
                           bool disk_cache = false)
    {
        dir = scratchDir(name);
        opt.socketPath = dir + "/asap.sock";
        opt.workers = workers;
        if (disk_cache)
            opt.cacheDir = dir + "/cache";
        daemon = std::make_unique<Daemon>(opt);
        std::string why;
        EXPECT_TRUE(daemon->start(&why)) << why;
    }

    ClientOptions clientOptions(const std::string &name,
                                int priority = 0) const
    {
        ClientOptions c;
        c.socketPath = opt.socketPath;
        c.clientName = name;
        c.priority = priority;
        return c;
    }
};

TEST(SvcDaemon, SweepMatchesBatchByteForByteAndWarmsUp)
{
    DaemonFixture fx("svc_daemon_identity", 2, /*disk_cache=*/true);

    const std::vector<ExperimentJob> jobs = sampleJobs();

    // Ground truth: the batch engine over a private cache.
    ResultCache batchCache;
    RunOptions ro;
    ro.cache = &batchCache;
    const SweepResult batch = runJobs(jobs, ro);

    SvcClient client(fx.clientOptions("identity-test"));
    SweepResult served;
    std::string why;
    ASSERT_TRUE(client.runJobs(jobs, served, &why)) << why;

    EXPECT_EQ(csvOf(served), csvOf(batch));
    EXPECT_EQ(served.uniqueRuns, batch.uniqueRuns);
    EXPECT_EQ(served.cacheHits, batch.cacheHits);

    // Warm resubmit: the daemon's hot cache serves everything.
    SweepResult warm;
    ASSERT_TRUE(client.runJobs(jobs, warm, &why)) << why;
    EXPECT_EQ(warm.uniqueRuns, 0u);
    EXPECT_EQ(warm.cacheHits, warm.jobs.size());
    EXPECT_EQ(csvOf(warm), csvOf(batch)); // identical even when cached

    const DaemonStats ds = fx.daemon->stats();
    EXPECT_EQ(ds.sweepsAdmitted, 2u);
    EXPECT_GT(ds.resultsStreamed, 0u);
}

TEST(SvcDaemon, ServesConcurrentClients)
{
    DaemonFixture fx("svc_daemon_concurrent", 2);

    // Three clients, three distinct sweeps (different seeds), all in
    // flight at once.
    std::vector<std::thread> threads;
    std::vector<std::string> errors(3);
    std::vector<bool> ok(3, false);
    for (int c = 0; c < 3; ++c) {
        threads.emplace_back([&, c] {
            const std::vector<ExperimentJob> jobs =
                sampleJobs(20, 100 + static_cast<std::uint64_t>(c));
            ResultCache mine;
            RunOptions ro;
            ro.cache = &mine;
            const SweepResult batch = runJobs(jobs, ro);

            SvcClient client(fx.clientOptions(
                "client-" + std::to_string(c), /*priority=*/c));
            SweepResult served;
            std::string why;
            if (!client.runJobs(jobs, served, &why)) {
                errors[c] = why;
                return;
            }
            ok[c] = csvOf(served) == csvOf(batch);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int c = 0; c < 3; ++c)
        EXPECT_TRUE(ok[c]) << "client " << c << ": " << errors[c];

    // The final result frame is streamed from inside the task, so the
    // scheduler's completion bookkeeping can trail the client's return
    // by a beat — poll briefly for quiescence.
    SchedStats st = fx.daemon->schedulerStats();
    for (int spin = 0; spin < 2000 && (st.queued || st.inFlight);
         ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        st = fx.daemon->schedulerStats();
    }
    EXPECT_EQ(st.queued, 0u);
    EXPECT_EQ(st.inFlight, 0u);
    EXPECT_EQ(st.perClient.size(), 3u);
}

TEST(SvcDaemon, CancelMidSweepNotifiesTheWaitingClient)
{
    // One worker: the first job runs while the rest sit in the
    // scheduler queue — a cancel then provably hits queued work.
    DaemonFixture fx("svc_daemon_cancel", 1);

    std::thread submitter;
    std::string why;
    bool accepted = true;
    {
        submitter = std::thread([&] {
            // Heavy enough that the sweep is still running when the
            // cancel lands.
            const std::vector<ExperimentJob> jobs =
                sampleJobs(/*ops=*/800, /*seed=*/11);
            SvcClient client(fx.clientOptions("victim"));
            SweepResult served;
            accepted = client.runJobs(jobs, served, &why);
        });
    }

    // Find the active sweep, then cancel it.
    SvcClient admin(fx.clientOptions("admin"));
    std::string sweepId;
    for (int spin = 0; spin < 4000 && sweepId.empty(); ++spin) {
        Json status;
        std::string w2;
        ASSERT_TRUE(admin.status(status, &w2)) << w2;
        const Json &sweeps = status.get("sweeps");
        if (sweeps.size() > 0)
            sweepId = sweeps.at(0).get("sweep").asString();
        else
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_FALSE(sweepId.empty()) << "sweep never appeared in status";

    std::uint64_t cancelled = 0;
    std::string w3;
    ASSERT_TRUE(admin.cancel(sweepId, &cancelled, &w3)) << w3;

    submitter.join();
    if (cancelled > 0) {
        // Queued jobs were dropped: the client must see a failed
        // sweep, not silently partial results.
        EXPECT_FALSE(accepted);
        EXPECT_NE(why.find("cancel"), std::string::npos) << why;
    } else {
        // The sweep won the race and finished whole; that's a valid
        // (if unlucky) outcome — the client saw a full result.
        EXPECT_TRUE(accepted) << why;
    }
}

TEST(SvcDaemon, RefusesMismatchedCodeSalt)
{
    // A fake daemon that answers the hello with a bogus salt: the
    // client must refuse the connection outright (mixed builds must
    // not share a cache namespace) and must not retry.
    const std::string dir = scratchDir("svc_salt_test");
    const std::string path = dir + "/fake.sock";
    std::string why;
    const int lfd = listenUnix(path, &why);
    ASSERT_GE(lfd, 0) << why;

    std::thread server([&] {
        const int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0)
            return;
        std::string req;
        if (readFrame(cfd, req, 5000) == FrameStatus::Ok) {
            Json resp = Json::object();
            resp.set("ok", Json::boolean(true));
            resp.set("server", Json::str("fake"));
            resp.set("salt", Json::str("not-the-real-salt"));
            resp.set("width", Json::number(std::uint64_t{1}));
            writeFrame(cfd, resp.dump(), 5000);
        }
        ::close(cfd);
    });

    ClientOptions copt;
    copt.socketPath = path;
    copt.clientName = "salt-test";
    SvcClient client(copt);
    std::string reason;
    EXPECT_FALSE(client.connect(&reason));
    EXPECT_NE(reason.find("salt"), std::string::npos) << reason;

    server.join();
    ::close(lfd);
}

TEST(SvcDaemon, GracefulShutdownViaClientOp)
{
    DaemonFixture fx("svc_daemon_shutdown", 1);

    SvcClient client(fx.clientOptions("ops"));
    std::string why;
    ASSERT_TRUE(client.ping(&why)) << why;

    Json stats;
    ASSERT_TRUE(client.stats(stats, &why)) << why;
    EXPECT_TRUE(stats.get("cache").isObject());
    EXPECT_TRUE(stats.get("scheduler").isObject());
    EXPECT_TRUE(stats.get("daemon").isObject());

    ASSERT_TRUE(client.shutdown(&why)) << why;
    fx.daemon->waitStopped();
    EXPECT_FALSE(fx.daemon->running());
    EXPECT_FALSE(fs::exists(fx.opt.socketPath)); // socket unlinked
}

// ---------------------------------------------------------- probe memo

TEST(SvcProbeMemo, WarmCampaignSkipsTheProbePhase)
{
    CampaignSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {2};
    spec.params = tinyParams();
    spec.ticksPerConfig = 3;

    ResultCache cache;
    RunOptions ro;
    ro.cache = &cache;

    const CampaignResult cold = runCampaign(spec, ro);
    EXPECT_FALSE(cold.probePhaseCached);

    const CampaignResult warm = runCampaign(spec, ro);
    EXPECT_TRUE(warm.probePhaseCached);
    EXPECT_EQ(csvOf(warm.sweep), csvOf(cold.sweep));
    ASSERT_EQ(warm.rows.size(), cold.rows.size());
    for (std::size_t i = 0; i < warm.rows.size(); ++i) {
        EXPECT_EQ(warm.rows[i].probeTicks, cold.rows[i].probeTicks);
        EXPECT_EQ(warm.rows[i].consistent, cold.rows[i].consistent);
    }

    // The memo must key on probe-job identity: a different seed is a
    // different probe set and must not be served from this memo.
    CampaignSpec other = spec;
    other.params.seed = 99;
    const CampaignResult miss = runCampaign(other, ro);
    EXPECT_FALSE(miss.probePhaseCached);
}

TEST(SvcProbeMemo, SerializationRejectsCorruptText)
{
    std::vector<ProbeStat> stats(2);
    stats[0] = {1000, 4};
    stats[1] = {2000, 8};
    const std::string text = serializeProbeStats(stats);

    std::vector<ProbeStat> back;
    ASSERT_TRUE(deserializeProbeStats(text, back));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].runTicks, 1000u);
    EXPECT_EQ(back[1].epochs, 8u);

    EXPECT_FALSE(deserializeProbeStats("", back));
    EXPECT_FALSE(deserializeProbeStats("probeStats v99\n", back));
    EXPECT_FALSE(
        deserializeProbeStats(text.substr(0, text.size() / 2), back));
}

// ----------------------------------------------------- emergency lease

TEST(SvcLease, EmergencyReleaseUnlinksHeldLeases)
{
    const std::string dir = scratchDir("svc_lease_emergency");
    LeaseConfig lc;
    lc.dir = dir;
    LeaseManager lm(lc);

    ASSERT_EQ(lm.tryAcquire("job-a"), LeaseManager::Acquire::Acquired);
    ASSERT_EQ(lm.tryAcquire("job-b"), LeaseManager::Acquire::Acquired);
    EXPECT_TRUE(fs::exists(lm.leasePath("job-a")));
    EXPECT_GE(LeaseManager::emergencyRegisteredCount(), 2u);

    // Normal release must disarm its slot (no double-release later).
    lm.release("job-b");
    EXPECT_FALSE(fs::exists(lm.leasePath("job-b")));

    EXPECT_GE(LeaseManager::emergencyReleaseAll(), 1u);
    EXPECT_FALSE(fs::exists(lm.leasePath("job-a")));
    EXPECT_EQ(LeaseManager::emergencyRegisteredCount(), 0u);
}

TEST(SvcLeaseDeathTest, SignalHandlerReleasesLeasesBeforeDying)
{
    const std::string dir = scratchDir("svc_lease_signal");
    const std::string leaseFile = dir + "/job-x.lease";

    EXPECT_EXIT(
        {
            installLeaseSignalHandler();
            LeaseConfig lc;
            lc.dir = dir;
            LeaseManager lm(lc);
            if (lm.tryAcquire("job-x") !=
                LeaseManager::Acquire::Acquired)
                ::_exit(3);
            ::raise(SIGTERM); // handler unlinks, then re-raises
            ::_exit(4);       // unreachable if the handler re-raised
        },
        ::testing::KilledBySignal(SIGTERM), "");

    // The interrupted process must not have stranded its lease for a
    // TTL: other shards can claim the job immediately.
    EXPECT_FALSE(fs::exists(leaseFile));
}

} // namespace
} // namespace asap
