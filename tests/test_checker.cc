/**
 * @file
 * Unit tests for the crash-consistency checker itself: it must accept
 * legal post-crash states and reject each class of violation the
 * Section VI theorems rule out.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "mem/nvm_contents.hh"
#include "recovery/checker.hh"
#include "recovery/run_log.hh"

namespace asap
{
namespace
{

struct CheckerFixture : public ::testing::Test
{
    RunLog log;
    NvmContents nvm;
    std::vector<std::uint64_t> committed{0, 0};

    /**
     * Every scenario doubles as a CheckScope conformance case: the
     * delta-check verdict must agree exactly with the full checker,
     * both with every logged line variable (the all-delta extreme)
     * and with none (the all-static extreme).
     */
    CheckResult
    check()
    {
        const CheckResult full =
            checkCrashConsistency(log, nvm, committed);

        auto index = std::make_shared<const CheckerIndex>(log);
        std::vector<std::uint64_t> lines;
        std::unordered_set<std::uint64_t> seen;
        for (const RunLog::StoreRecord &s : log.allStores()) {
            if (seen.insert(s.line).second)
                lines.push_back(s.line);
        }
        CheckScope allVar(index, nvm, committed, lines);
        if (allVar.usable()) {
            std::vector<std::uint64_t> values;
            values.reserve(lines.size());
            for (std::uint64_t line : lines)
                values.push_back(nvm.read(line));
            CheckScope::Scratch scratch;
            EXPECT_EQ(allVar.consistent(values, scratch), full.ok)
                << "all-variable CheckScope disagrees: "
                << full.message;
        }
        CheckScope allFixed(index, nvm, committed, {});
        if (allFixed.usable()) {
            const std::vector<std::uint64_t> none;
            CheckScope::Scratch scratch;
            EXPECT_EQ(allFixed.consistent(none, scratch), full.ok)
                << "all-fixed CheckScope disagrees: " << full.message;
        }
        return full;
    }
};

TEST_F(CheckerFixture, EmptyRunIsConsistent)
{
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, AllWritesSurvivedIsConsistent)
{
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 101, 22);
    nvm.write(100, 11);
    nvm.write(101, 22);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, NothingSurvivedIsConsistent)
{
    log.recordStore(0, 1, 100, 11);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, PrefixSurvivalIsConsistent)
{
    // Epoch 1 survived, epoch 2 did not: legal.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 101, 22);
    nvm.write(100, 11);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, LaterEpochWithoutEarlierIsViolation)
{
    // Epoch 2's write survived while epoch 1's (same thread) is lost.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 101, 22);
    nvm.write(101, 22);
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("ancestor"), std::string::npos);
}

TEST_F(CheckerFixture, CrossThreadDependencyViolation)
{
    // Thread 1 epoch 5 depends on thread 0 epoch 1; the dependent's
    // write survived, the source's did not.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(1, 5, 200, 55);
    log.recordEdge(1, 5, 0, 1);
    nvm.write(200, 55);
    EXPECT_FALSE(check().ok);
    nvm.write(100, 11);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, TransitiveDependencyViolation)
{
    // t2.e3 -> t1.e2 -> t0.e1; only the deepest write is lost.
    log.recordStore(0, 1, 100, 1);
    log.recordStore(1, 2, 101, 2);
    log.recordStore(2, 3, 102, 3);
    log.recordEdge(1, 2, 0, 1);
    log.recordEdge(2, 3, 1, 2);
    committed = {0, 0, 0};
    nvm.write(102, 3);
    nvm.write(101, 2);
    EXPECT_FALSE(check().ok) << "t0.e1 write missing";
    nvm.write(100, 1);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, CommittedEpochMustBeDurable)
{
    log.recordStore(0, 1, 100, 11);
    committed[0] = 1; // hardware reported epoch 1 committed
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("committed"), std::string::npos);
    nvm.write(100, 11);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, OverwrittenCommittedWriteIsFine)
{
    // Epoch 1's write was overwritten by epoch 2's surviving write:
    // epoch 1 is still "visible" (superseded in line order).
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 100, 22);
    committed[0] = 2;
    nvm.write(100, 22);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, OlderValueSurvivingUnderCommitIsViolation)
{
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 100, 22);
    committed[0] = 2;
    nvm.write(100, 11); // rolled back past a committed epoch
    EXPECT_FALSE(check().ok);
}

TEST_F(CheckerFixture, AlienValueDetected)
{
    log.recordStore(0, 1, 100, 11);
    nvm.write(100, 999); // never written by any store
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("alien"), std::string::npos);
}

TEST_F(CheckerFixture, ValueFromWrongLineDetected)
{
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 1, 101, 22);
    nvm.write(100, 22); // token 22 belongs to line 101
    EXPECT_FALSE(check().ok);
}

TEST_F(CheckerFixture, PartialEpochSurvivalIsLegal)
{
    // Epoch 1 wrote two lines; only one survived. Legal: within an
    // epoch, writes are unordered.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 1, 101, 22);
    nvm.write(100, 11);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, IntraEpochLineOrderViolation)
{
    // Two writes to one line in one epoch: only the older may not
    // survive while the epoch is an ancestor of a survivor.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 1, 100, 12);
    log.recordStore(0, 2, 101, 33);
    nvm.write(100, 11); // epoch 1's last write (12) lost...
    nvm.write(101, 33); // ...but epoch 2 survived
    EXPECT_FALSE(check().ok);
}

TEST_F(CheckerFixture, DuplicateTokensRejected)
{
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 100, 11);
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("duplicate"), std::string::npos);
}

// --- violation classes the crash-state permuter (src/permute/) can
// --- synthesize; each must be rejected independently of the permuter.

TEST_F(CheckerFixture, PartialUndoRewindViolation)
{
    // A crash-time rewind that applied only part of the Recovery
    // Table: speculative epoch 1's write on line 100 was rolled back
    // to the initial value, but its dependent epoch 2 kept its
    // speculative value on line 101 — the survivor's ancestor is no
    // longer durable.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 101, 22);
    nvm.write(100, 0); // rewound (initial value)
    nvm.write(101, 22); // speculative survivor
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("ancestor"), std::string::npos);
    // Fully rewinding (both lines) is legal again.
    nvm.write(101, 0);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, OutOfOrderWpqDrainViolation)
{
    // A WPQ drain that let epoch 3's write reach media while dropping
    // committed epoch 2's still-queued write: the later epoch
    // survived an earlier committed one.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 101, 22);
    log.recordStore(0, 3, 102, 33);
    committed[0] = 2;
    nvm.write(100, 11);
    nvm.write(102, 33); // drained out of order
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    // Both check classes fire on this state; either message proves
    // the drain reorder was caught.
    const bool lostCommit =
        r.message.find("committed") != std::string::npos;
    const bool badAncestor =
        r.message.find("ancestor") != std::string::npos;
    EXPECT_TRUE(lostCommit || badAncestor) << r.message;
    // The in-order drain of the same three writes is legal.
    nvm.write(101, 22);
    EXPECT_TRUE(check().ok);
}

TEST_F(CheckerFixture, TornLineValueIsAlien)
{
    // A value matching no logged store token on a logged line — e.g.
    // a torn combination of two writes — is flagged as alien rather
    // than attributed to either epoch.
    log.recordStore(0, 1, 100, 11);
    log.recordStore(0, 2, 100, 22);
    nvm.write(100, 33); // neither token
    CheckResult r = check();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("alien"), std::string::npos);
}

} // namespace
} // namespace asap
