/**
 * @file
 * Tests for the crash-injection campaign subsystem: tick selection
 * strategies, the Crash job kind through the engine (dispatch, cache
 * tiers, verdict assembly), campaign accounting, repro lines, and
 * the worker-count independence of verdict tables.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "exp/cache.hh"
#include "exp/crash_campaign.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.opsPerThread = 20;
    p.seed = 7;
    return p;
}

void
expectSameVerdict(const CrashVerdict &a, const CrashVerdict &b)
{
    EXPECT_EQ(a.consistent, b.consistent);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.crashTick, b.crashTick);
    EXPECT_EQ(a.actualTick, b.actualTick);
    EXPECT_EQ(a.committedUpTo, b.committedUpTo);
    EXPECT_EQ(a.storesLogged, b.storesLogged);
    EXPECT_EQ(a.linesSurvived, b.linesSurvived);
    EXPECT_EQ(a.undoReplayed, b.undoReplayed);
    EXPECT_EQ(a.adrDrainWrites, b.adrDrainWrites);
}

// ---------------------------------------------------- tick selection

TEST(TickSelection, StrategiesStayInBoundsAndAreDeterministic)
{
    for (TickStrategy s : {TickStrategy::Stride,
                           TickStrategy::EpochBiased,
                           TickStrategy::Random}) {
        const std::vector<Tick> a =
            selectCrashTicks(s, 100000, 200, 4, 50, 11);
        const std::vector<Tick> b =
            selectCrashTicks(s, 100000, 200, 4, 50, 11);
        ASSERT_EQ(a.size(), 50u) << toString(s);
        EXPECT_EQ(a, b) << toString(s) << " must be deterministic";
        for (Tick t : a) {
            EXPECT_GE(t, 1u) << toString(s);
            EXPECT_LE(t, 100000u) << toString(s);
        }
    }
    // Different seeds move the random strategy.
    EXPECT_NE(selectCrashTicks(TickStrategy::Random, 100000, 200, 4,
                               50, 11),
              selectCrashTicks(TickStrategy::Random, 100000, 200, 4,
                               50, 12));
}

TEST(TickSelection, StrideCoversTheRun)
{
    const std::vector<Tick> t =
        selectCrashTicks(TickStrategy::Stride, 1000, 10, 4, 10, 1);
    ASSERT_EQ(t.size(), 10u);
    EXPECT_EQ(t.front(), 100u);
    EXPECT_EQ(t.back(), 1000u);
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
}

TEST(TickSelection, DegenerateRunsStillProduceValidTicks)
{
    for (TickStrategy s : {TickStrategy::Stride,
                           TickStrategy::EpochBiased,
                           TickStrategy::Random}) {
        // Zero-length run, zero epochs: every tick must still be >= 1.
        for (Tick t : selectCrashTicks(s, 0, 0, 0, 8, 3)) {
            EXPECT_GE(t, 1u);
            EXPECT_LE(t, 1u);
        }
    }
}

TEST(TickSelection, ParseAndPrintRoundTrip)
{
    EXPECT_EQ(parseTickStrategy("stride"), TickStrategy::Stride);
    EXPECT_EQ(parseTickStrategy("epoch"), TickStrategy::EpochBiased);
    EXPECT_EQ(parseTickStrategy("random"), TickStrategy::Random);
    EXPECT_EQ(toString(TickStrategy::EpochBiased), "epoch");
}

// ------------------------------------------------- crash job plumbing

TEST(CrashJobs, KeyDependsOnKindAndTick)
{
    JobSet set;
    set.add("queue", ModelKind::Asap, PersistencyModel::Release, 4,
            tinyParams());
    const std::string runKey = jobKey(set.jobs()[0]);

    ExperimentJob crash = set.jobs()[0];
    crash.kind = JobKind::Crash;
    crash.crashTick = 5000;
    EXPECT_NE(jobKey(crash), runKey);

    ExperimentJob other = crash;
    other.crashTick = 5001;
    EXPECT_NE(jobKey(other), jobKey(crash));
}

TEST(CrashJobs, EntrySerializationRoundTripsVerdicts)
{
    CachedResult e;
    e.kind = JobKind::Crash;
    e.run.workload = "cceh";
    e.run.model = ModelKind::Asap;
    e.run.persistency = PersistencyModel::Release;
    e.run.runTicks = 4242;
    e.verdict.consistent = false;
    e.verdict.message = "epoch (t1,e3) lost a write: line 77";
    e.verdict.crashTick = 4242;
    e.verdict.actualTick = 4242;
    e.verdict.committedUpTo = {3, 1, 0, 7};
    e.verdict.storesLogged = 99;
    e.verdict.linesSurvived = 55;
    e.verdict.undoReplayed = 4;
    e.verdict.adrDrainWrites = 6;

    CachedResult back;
    ASSERT_TRUE(deserializeEntry(serializeEntry(e), back));
    EXPECT_EQ(back.kind, JobKind::Crash);
    EXPECT_EQ(back.run.workload, "cceh");
    EXPECT_EQ(back.run.runTicks, 4242u);
    expectSameVerdict(e.verdict, back.verdict);

    // Run entries keep the PR 1 stat wire format, now prefixed by the
    // code-version stamp (legacy unstamped entries still parse).
    CachedResult runEntry;
    runEntry.run.workload = "queue";
    runEntry.run.model = ModelKind::Hops;
    runEntry.run.persistency = PersistencyModel::Epoch;
    EXPECT_EQ(serializeEntry(runEntry),
              std::string("codeSalt ") + cacheCodeSalt() + "\n" +
                  serializeResult(runEntry.run));

    // Truncation is rejected.
    const std::string text = serializeEntry(e);
    EXPECT_FALSE(deserializeEntry(text.substr(0, text.size() / 2),
                                  back));
}

TEST(CrashJobs, DiskTierPersistsVerdicts)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "asap_crash_cache_test")
            .string();
    std::filesystem::remove_all(dir);

    CachedResult e;
    e.kind = JobKind::Crash;
    e.run.workload = "queue";
    e.run.model = ModelKind::Asap;
    e.run.persistency = PersistencyModel::Release;
    e.verdict.consistent = true;
    e.verdict.crashTick = 123;
    e.verdict.committedUpTo = {1, 2};
    {
        ResultCache writer(dir);
        writer.insert("exp-crash1", e);
    }
    ResultCache reader(dir);
    CachedResult out;
    ASSERT_TRUE(reader.lookup("exp-crash1", out));
    EXPECT_EQ(out.kind, JobKind::Crash);
    expectSameVerdict(e.verdict, out.verdict);
    std::filesystem::remove_all(dir);
}

TEST(CrashJobs, EngineDispatchMatchesDirectCall)
{
    setLogQuiet(true);
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.numCores = 4;
    set.addCrash("cceh", cfg, tinyParams(), 20000);

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);
    ASSERT_EQ(sr.jobs.size(), 1u);
    EXPECT_TRUE(sr.hasCrashJobs());

    const CrashRunResult direct = runCrashExperiment(
        "cceh", sr.jobs[0].cfg, sr.jobs[0].params, 20000);
    expectSameVerdict(direct.verdict, sr.verdicts[0]);
    EXPECT_EQ(direct.run.runTicks, sr.results[0].runTicks);
    EXPECT_EQ(direct.run.pmWrites, sr.results[0].pmWrites);
    EXPECT_TRUE(sr.verdicts[0].consistent)
        << sr.verdicts[0].message;
}

// ----------------------------------------------------- the campaign

TEST(Campaign, SmallCampaignAllConsistentAndWorkerCountInvariant)
{
    setLogQuiet(true);
    CampaignSpec spec;
    spec.workloads = {"queue", "cceh"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Epoch}};
    spec.params = tinyParams();
    spec.ticksPerConfig = 20;

    ResultCache serialCache, parallelCache;
    RunOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    RunOptions parallel;
    parallel.jobs = 8;
    parallel.cache = &parallelCache;

    const CampaignResult s = runCampaign(spec, serial);
    const CampaignResult p = runCampaign(spec, parallel);

    // 2 workloads x 2 models x 20 ticks.
    EXPECT_EQ(s.crashPoints(), 80u);
    ASSERT_EQ(s.rows.size(), 4u);

    // Every verdict consistent (the paper's Theorem 2, fuzzed).
    EXPECT_TRUE(s.allConsistent());
    for (const CampaignRow &row : s.rows) {
        EXPECT_EQ(row.consistent, row.points);
        EXPECT_GT(row.probeTicks, 0u);
        EXPECT_GT(row.probeEpochs, 0u);
    }

    // jobs=1 and jobs=8 produce identical verdict tables.
    ASSERT_EQ(p.crashPoints(), s.crashPoints());
    for (std::size_t i = 0; i < s.crashPoints(); ++i) {
        EXPECT_EQ(s.sweep.jobs[i].workload, p.sweep.jobs[i].workload);
        EXPECT_EQ(s.sweep.jobs[i].crashTick,
                  p.sweep.jobs[i].crashTick);
        expectSameVerdict(s.sweep.verdicts[i], p.sweep.verdicts[i]);
    }
    for (std::size_t r = 0; r < s.rows.size(); ++r) {
        EXPECT_EQ(s.rows[r].points, p.rows[r].points);
        EXPECT_EQ(s.rows[r].consistent, p.rows[r].consistent);
    }
}

TEST(Campaign, WarmCacheServesTheWholeCampaign)
{
    setLogQuiet(true);
    CampaignSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = tinyParams();
    spec.ticksPerConfig = 6;

    ResultCache cache;
    RunOptions opt;
    opt.jobs = 2;
    opt.cache = &cache;
    const CampaignResult cold = runCampaign(spec, opt);
    EXPECT_GT(cold.sweep.uniqueRuns, 0u);
    const CampaignResult warm = runCampaign(spec, opt);
    EXPECT_EQ(warm.sweep.uniqueRuns, 0u);
    EXPECT_EQ(warm.sweep.cacheHits, warm.crashPoints());
    for (std::size_t i = 0; i < warm.crashPoints(); ++i)
        expectSameVerdict(cold.sweep.verdicts[i],
                          warm.sweep.verdicts[i]);
}

TEST(Campaign, ReproCommandNamesEveryCoordinate)
{
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Epoch;
    cfg.numCores = 8;
    WorkloadParams p = tinyParams();
    set.addCrash("p-art", cfg, p, 31337);
    const std::string line = reproCommand(set.jobs()[0]);
    EXPECT_NE(line.find("--repro"), std::string::npos);
    EXPECT_NE(line.find("--workload p-art"), std::string::npos);
    EXPECT_NE(line.find("--model asap"), std::string::npos);
    EXPECT_NE(line.find("--pm ep"), std::string::npos);
    EXPECT_NE(line.find("--cores 8"), std::string::npos);
    EXPECT_NE(line.find("--ops 20"), std::string::npos);
    EXPECT_NE(line.find("--seed 7"), std::string::npos);
    EXPECT_NE(line.find("--crash-tick 31337"), std::string::npos);
}

TEST(Campaign, EmittersCarryVerdictFields)
{
    setLogQuiet(true);
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    set.addCrash("queue", cfg, tinyParams(), 4000);

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);

    std::ostringstream json;
    emitJson(json, sr);
    EXPECT_NE(json.str().find("\"kind\": \"crash\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"crashTick\": 4000"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"consistent\": "), std::string::npos);
    EXPECT_NE(json.str().find("\"committedUpTo\": ["),
              std::string::npos);

    std::ostringstream csv;
    emitCsv(csv, sr);
    EXPECT_NE(csv.str().find(",kind,crashTick,"), std::string::npos);
    EXPECT_NE(csv.str().find(",crash,4000,"), std::string::npos);
}

} // namespace
} // namespace asap
