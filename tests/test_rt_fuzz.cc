/**
 * @file
 * Model-based fuzzing of the Recovery Table.
 *
 * A miniature persist-path harness drives the RT with thousands of
 * random—but protocol-valid—action sequences: epochs in a linear
 * commit order write random lines; flushes are delivered respecting
 * per-line write order (the persist buffers' guarantee); a flush is
 * early iff its epoch is not yet safe; NACKed flushes retry once
 * their epoch is safe; commits happen in order once an epoch's
 * flushes are all acknowledged. At a random point the power fails.
 *
 * Oracle (epoch persistency over a linear epoch order): after the
 * undo rewind, each line must hold either the last committed write,
 * or a write of the single *safe* (next-to-commit) epoch, or its
 * initial value if nothing committed wrote it. Writes from deeper
 * uncommitted epochs must never survive.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "core/recovery_table.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace asap
{
namespace
{

struct MiniWrite
{
    std::uint64_t line;
    std::uint64_t value;
    std::size_t epoch;      //!< index into the linear epoch order
    bool delivered = false;
    bool nacked = false;
};

class MiniHarness
{
  public:
    MiniHarness(std::uint64_t seed, unsigned rt_entries,
                unsigned num_epochs, unsigned lines,
                unsigned writes_per_epoch)
        : rng(seed), rt(0, rt_entries, stats)
    {
        std::uint64_t token = 1;
        writes.reserve(num_epochs * writes_per_epoch);
        epochWrites.resize(num_epochs);
        for (std::size_t e = 0; e < num_epochs; ++e) {
            const unsigned n =
                1 + static_cast<unsigned>(rng.below(writes_per_epoch));
            for (unsigned i = 0; i < n; ++i) {
                MiniWrite w;
                w.line = rng.below(lines);
                w.value = token++;
                w.epoch = e;
                lineOrder[w.line].push_back(writes.size());
                epochWrites[e].push_back(writes.size());
                writes.push_back(w);
            }
        }
    }

    /** Deliverable: earlier same-line writes all delivered, and a
     *  NACKed write only once its epoch is safe. */
    bool
    eligible(std::size_t wi) const
    {
        const MiniWrite &w = writes[wi];
        if (w.delivered)
            return false;
        if (w.nacked && w.epoch != nextCommit)
            return false;
        const auto &order = lineOrder.at(w.line);
        for (std::size_t oi : order) {
            if (oi == wi)
                break;
            if (!writes[oi].delivered)
                return false;
        }
        return true;
    }

    void
    deliver(std::size_t wi)
    {
        MiniWrite &w = writes[wi];
        const bool early = w.epoch > nextCommit;
        FlushPacket pkt{w.line, w.value, 0,
                        static_cast<std::uint64_t>(w.epoch + 1),
                        early};
        const std::uint64_t cur =
            mem.count(w.line) ? mem[w.line] : 0;
        switch (rt.onFlush(pkt, cur)) {
          case FlushAction::WriteMemory:
          case FlushAction::CreateUndoAndWrite:
            mem[w.line] = w.value;
            w.delivered = true;
            break;
          case FlushAction::SuppressWrite:
          case FlushAction::CreateDelay:
            w.delivered = true;
            break;
          case FlushAction::Nack:
            w.nacked = true;
            break;
        }
    }

    bool
    canCommit() const
    {
        if (nextCommit >= epochWrites.size())
            return false;
        for (std::size_t wi : epochWrites[nextCommit]) {
            if (!writes[wi].delivered)
                return false;
        }
        return true;
    }

    void
    commit()
    {
        rt.onCommit(0, static_cast<std::uint64_t>(nextCommit + 1),
                    [this](std::uint64_t line, std::uint64_t value) {
                        mem[line] = value;
                    });
        ++nextCommit;
    }

    void
    crash()
    {
        rt.onCrash([this](std::uint64_t line, std::uint64_t value) {
            mem[line] = value;
        });
    }

    /** Run random steps, then crash and check the oracle. */
    ::testing::AssertionResult
    fuzz(unsigned steps)
    {
        for (unsigned s = 0; s < steps; ++s) {
            if (canCommit() && rng.percent(30)) {
                commit();
                continue;
            }
            // Pick a random eligible write.
            std::vector<std::size_t> cands;
            for (std::size_t wi = 0; wi < writes.size(); ++wi) {
                if (eligible(wi))
                    cands.push_back(wi);
            }
            if (cands.empty()) {
                if (canCommit()) {
                    commit();
                    continue;
                }
                break; // everything delivered and committed
            }
            deliver(cands[rng.below(cands.size())]);
        }
        crash();
        return checkOracle();
    }

  private:
    ::testing::AssertionResult
    checkOracle() const
    {
        for (const auto &[line, order] : lineOrder) {
            const std::uint64_t got =
                mem.count(line) ? mem.at(line) : 0;
            // Allowed: last committed write, any safe-epoch write,
            // or 0 when no committed epoch wrote the line.
            std::vector<std::uint64_t> allowed;
            std::uint64_t last_committed = 0;
            for (std::size_t wi : order) {
                if (writes[wi].epoch < nextCommit)
                    last_committed = writes[wi].value;
                else if (writes[wi].epoch == nextCommit)
                    allowed.push_back(writes[wi].value);
            }
            allowed.push_back(last_committed);
            bool ok = false;
            for (std::uint64_t v : allowed)
                ok = ok || v == got;
            if (!ok) {
                return ::testing::AssertionFailure()
                       << "line " << line << " holds " << got
                       << " (last committed " << last_committed
                       << ", committed epochs " << nextCommit << ")";
            }
        }
        return ::testing::AssertionSuccess();
    }

    Rng rng;
    StatSet stats;
    RecoveryTable rt;
    std::vector<MiniWrite> writes;
    std::vector<std::vector<std::size_t>> epochWrites;
    std::map<std::uint64_t, std::vector<std::size_t>> lineOrder;
    std::unordered_map<std::uint64_t, std::uint64_t> mem;
    std::size_t nextCommit = 0;
};

class RtFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RtFuzz, RandomScheduleSurvivesCrash)
{
    setLogQuiet(true);
    const unsigned cfg = GetParam();
    // Vary table size / contention by parameter band.
    const unsigned rt_entries = 2 + cfg % 7;       // 2..8: tight
    const unsigned lines = 1 + cfg % 5;            // heavy collisions
    const unsigned epochs = 6 + cfg % 10;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        MiniHarness h(seed * 7919 + cfg, rt_entries, epochs, lines, 4);
        EXPECT_TRUE(h.fuzz(40 + cfg)) << "cfg " << cfg << " seed "
                                      << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, RtFuzz, ::testing::Range(0u, 24u));

TEST(RtFuzzLong, FullDrainMatchesAllCommitted)
{
    setLogQuiet(true);
    // Drive to complete commit: memory must equal the final value of
    // every line.
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        MiniHarness h(seed, 8, 12, 4, 3);
        EXPECT_TRUE(h.fuzz(100000)) << "seed " << seed;
    }
}

} // namespace
} // namespace asap
