/**
 * @file
 * Event-kernel determinism and allocation-behaviour tests.
 *
 * The kernel's ordering contract — events execute in (tick, scheduling
 * sequence) order, whoever scheduled them and from wherever — is what
 * makes every simulation deterministic, so it gets hammered here with
 * randomized schedules. The allocation tests pin down the "zero heap
 * allocation in steady state" property the kernel advertises, via the
 * global operator-new hook at the bottom of this file.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace asap;

/** Calls into the replaced global operator new (defined below). */
static std::atomic<std::uint64_t> g_newCalls{0};

namespace
{

// ------------------------------------------------------ determinism

TEST(EventQueueOrder, SameTickRespectsSchedulingOrderAcrossSources)
{
    // Events landing on one tick from different "components" (plain
    // schedule calls and callbacks scheduling more work) must run in
    // the order the schedule calls were made.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() {
        order.push_back(0);
        // Scheduled mid-tick: sequence-numbered after everything
        // already queued for tick 10, so it runs last of the three.
        eq.schedule(10, [&]() { order.push_back(2); });
    });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueOrder, RunLimitIsInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&]() { ++fired; });
    eq.schedule(51, [&]() { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);        // the event *at* the limit runs
    EXPECT_EQ(eq.now(), 50u);   // time stops exactly at the limit
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueOrder, RunLimitBetweenEventsAdvancesToLimit)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(90, []() {});
    EXPECT_FALSE(eq.run(40));
    EXPECT_EQ(eq.now(), 40u);
    // Resuming with a later limit picks up where the first stopped.
    EXPECT_TRUE(eq.run(90));
    EXPECT_EQ(eq.now(), 90u);
}

TEST(EventQueueOrder, RandomizedScheduleMatchesReferenceOrder)
{
    // Feed the heap random tick patterns (many collisions) and verify
    // the executed order is exactly lexicographic in (tick, seq) —
    // i.e. it matches a stable sort of the schedule calls. Events also
    // schedule follow-ups from inside callbacks, which must slot into
    // the same total order.
    std::mt19937 rng(12345);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        std::uint64_t seq = 0;
        // (when, seq) of each event, appended at execution time.
        std::vector<std::pair<Tick, std::uint64_t>> got;

        std::uniform_int_distribution<Tick> tick(0, 40);
        std::uniform_int_distribution<int> coin(0, 3);

        // The recursive scheduler: each event may spawn a follow-up.
        struct Ctx
        {
            EventQueue *eq;
            std::mt19937 *rng;
            std::uint64_t *seq;
            std::vector<std::pair<Tick, std::uint64_t>> *got;
            std::uniform_int_distribution<int> *coin;
        } ctx{&eq, &rng, &seq, &got, &coin};

        struct Spawner
        {
            static void
            add(Ctx &c, Tick when)
            {
                const std::uint64_t my_seq = (*c.seq)++;
                Ctx *cp = &c;
                c.eq->schedule(when, [cp, when, my_seq]() {
                    cp->got->emplace_back(when, my_seq);
                    if ((*cp->coin)(*cp->rng) == 0) {
                        std::uniform_int_distribution<Tick> d(0, 5);
                        add(*cp, cp->eq->now() + d(*cp->rng));
                    }
                });
            }
        };

        for (int i = 0; i < 300; ++i)
            Spawner::add(ctx, tick(rng));
        eq.run();

        ASSERT_EQ(got.size(), seq);
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()))
            << "trial " << trial << ": execution order violates "
            << "(tick, seq) lexicographic order";
    }
}

TEST(EventQueueOrder, ClearReportsDroppedCountAndKeepsExecuted)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    eq.schedule(3, [&]() { ++fired; });
    eq.step();
    EXPECT_EQ(eq.clear(), 2u);
    EXPECT_EQ(eq.clear(), 0u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_TRUE(eq.run());
}

// ------------------------------------------------------- allocation

/** A self-rechaining event stream (the simulator's core pattern). */
struct Chain
{
    EventQueue *eq = nullptr;
    int left = 0;
    void
    step()
    {
        if (--left > 0)
            eq->scheduleAfter(1, [this]() { step(); });
    }
};

/**
 * One workload pass: 100 parallel chains of 200 events each. The
 * chain storage is caller-owned so a measured pass performs no
 * allocations of its own outside the queue under test.
 */
void
runChainWorkload(EventQueue &eq, std::vector<Chain> &chains)
{
    chains.assign(100, Chain{&eq, 200});
    for (std::size_t c = 0; c < chains.size(); ++c) {
        Chain *cp = &chains[c];
        eq.scheduleAfter(1 + static_cast<Tick>(c),
                         [cp]() { cp->step(); });
    }
    eq.run();
}

TEST(EventQueueAlloc, SteadyStateSchedulePopIsAllocationFree)
{
    EventQueue eq;
    std::vector<Chain> chains;
    chains.reserve(100);
    // First pass warms the heap vector, the slot slabs and the
    // freelist to this workload's peak pending-event count.
    runChainWorkload(eq, chains);
    // An identical second pass must not touch the heap at all.
    const std::uint64_t before = g_newCalls.load();
    runChainWorkload(eq, chains);
    const std::uint64_t after = g_newCalls.load();
    EXPECT_EQ(after - before, 0u)
        << "schedule/pop allocated on a warmed queue";
    // Each chain's 200 step calls ride on exactly 200 events (the
    // kickoff event makes the first call).
    EXPECT_EQ(eq.executed(), 2u * 100u * 200u);
}

TEST(EventQueueAlloc, WarmRunLimitWindowsAreAllocationFree)
{
    // The System::run(limit) resume pattern used by crash injection.
    EventQueue eq;
    std::vector<Chain> chains;
    chains.reserve(100);
    runChainWorkload(eq, chains);
    const std::uint64_t before = g_newCalls.load();
    Chain chain{&eq, 5000};
    eq.scheduleAfter(1, [&chain]() { chain.step(); });
    while (!eq.run(eq.now() + 100)) {
    }
    EXPECT_EQ(g_newCalls.load() - before, 0u);
}

} // namespace

// --------------------------------------------------------------------
// Global operator-new hook: counts every heap allocation in the test
// binary so the EventQueueAlloc tests can assert a zero delta. Only
// the unaligned overloads are replaced (paired with their deletes);
// the malloc forwarding keeps sanitizer interceptors in the loop.

void *
operator new(std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
