/**
 * @file
 * Tests for the experiment-orchestration subsystem (src/exp/):
 * sweep expansion, cache keys and tiers, thread-pool behaviour,
 * deterministic parallel execution and dedup accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/cache.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "exp/pool.hh"
#include "exp/sweep.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.opsPerThread = 20;
    p.seed = 7;
    return p;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.persistency, b.persistency);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.pmReads, b.pmReads);
    EXPECT_EQ(a.cyclesBlocked, b.cyclesBlocked);
    EXPECT_EQ(a.cyclesStalled, b.cyclesStalled);
    EXPECT_EQ(a.dfenceStalled, b.dfenceStalled);
    EXPECT_EQ(a.sfenceStalled, b.sfenceStalled);
    EXPECT_EQ(a.entriesInserted, b.entriesInserted);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.crossDeps, b.crossDeps);
    EXPECT_EQ(a.totSpecWrites, b.totSpecWrites);
    EXPECT_EQ(a.totalUndo, b.totalUndo);
    EXPECT_EQ(a.totalDelay, b.totalDelay);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.rtMaxOccupancy, b.rtMaxOccupancy);
    EXPECT_DOUBLE_EQ(a.pbOccMean, b.pbOccMean);
    EXPECT_EQ(a.pbOccP99, b.pbOccP99);
    EXPECT_EQ(a.wpqCoalesced, b.wpqCoalesced);
    EXPECT_EQ(a.suppressedWrites, b.suppressedWrites);
}

TEST(SweepSpec, ExpandsCrossProductInTableOrder)
{
    SweepSpec spec;
    spec.workloads = {"queue", "cceh"};
    spec.models = {{ModelKind::Hops, PersistencyModel::Release},
                   {ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {1, 4};
    spec.params = tinyParams();

    EXPECT_EQ(spec.jobCount(), 8u);
    const std::vector<ExperimentJob> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 8u);

    // Workload-major, models next, core counts innermost.
    EXPECT_EQ(jobs[0].workload, "queue");
    EXPECT_EQ(jobs[0].cfg.model, ModelKind::Hops);
    EXPECT_EQ(jobs[0].cfg.numCores, 1u);
    EXPECT_EQ(jobs[1].cfg.numCores, 4u);
    EXPECT_EQ(jobs[2].cfg.model, ModelKind::Asap);
    EXPECT_EQ(jobs[4].workload, "cceh");
    for (const ExperimentJob &j : jobs) {
        EXPECT_EQ(j.params.opsPerThread, 20u);
        EXPECT_EQ(j.cfg.seed, 7u);
    }
}

TEST(SweepSpec, JobSetReturnsIndices)
{
    JobSet set;
    const std::size_t a = set.add("queue", ModelKind::Asap,
                                  PersistencyModel::Release, 4,
                                  tinyParams());
    SimConfig cfg;
    cfg.rtEntries = 8;
    const std::size_t b = set.add("cceh", cfg, tinyParams());
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(set.jobs()[1].cfg.rtEntries, 8u);
    EXPECT_EQ(set.jobs()[1].cfg.seed, tinyParams().seed);
}

TEST(Cache, KeyIsStableAndSensitive)
{
    JobSet set;
    set.add("queue", ModelKind::Asap, PersistencyModel::Release, 4,
            tinyParams());
    set.add("queue", ModelKind::Asap, PersistencyModel::Release, 4,
            tinyParams());
    const std::string k0 = jobKey(set.jobs()[0]);
    EXPECT_EQ(k0, jobKey(set.jobs()[1])); // identical job, same key

    // Any differing knob must change the key.
    ExperimentJob j = set.jobs()[0];
    j.workload = "cceh";
    EXPECT_NE(jobKey(j), k0);
    j = set.jobs()[0];
    j.cfg.model = ModelKind::Hops;
    EXPECT_NE(jobKey(j), k0);
    j = set.jobs()[0];
    j.cfg.rtEntries = 16;
    EXPECT_NE(jobKey(j), k0);
    j = set.jobs()[0];
    j.params.opsPerThread = 21;
    EXPECT_NE(jobKey(j), k0);
    j = set.jobs()[0];
    j.params.seed = 8;
    EXPECT_NE(jobKey(j), k0);
}

TEST(Cache, ResultSerializationRoundTrips)
{
    RunResult r;
    r.workload = "queue";
    r.model = ModelKind::Hops;
    r.persistency = PersistencyModel::Epoch;
    r.cores = 8;
    r.runTicks = 123456789;
    r.pmWrites = 42;
    r.pbOccMean = 3.25;
    r.pbOccP99 = 17;
    r.suppressedWrites = 5;

    RunResult back;
    ASSERT_TRUE(deserializeResult(serializeResult(r), back));
    expectSameResult(r, back);

    // Truncated text must be rejected, not half-parsed.
    const std::string text = serializeResult(r);
    EXPECT_FALSE(
        deserializeResult(text.substr(0, text.size() / 2), back));
}

TEST(Cache, MemoryTierHitsAndMisses)
{
    ResultCache cache;
    RunResult r;
    r.workload = "queue";
    r.runTicks = 99;

    RunResult out;
    EXPECT_FALSE(cache.lookup("exp-k1", out));
    cache.insert("exp-k1", r);
    EXPECT_TRUE(cache.lookup("exp-k1", out));
    EXPECT_EQ(out.runTicks, 99u);
    EXPECT_EQ(cache.stats().memHits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits(), 1u);
}

TEST(Cache, DiskTierSurvivesProcessCacheLoss)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "asap_exp_cache_test")
            .string();
    std::filesystem::remove_all(dir);

    RunResult r;
    r.workload = "cceh";
    r.runTicks = 1234;
    r.pbOccMean = 1.5;
    {
        ResultCache writer(dir);
        writer.insert("exp-disk1", r);
    }
    // A fresh cache (≈ new process) must find it on disk.
    ResultCache reader(dir);
    RunResult out;
    ASSERT_TRUE(reader.lookup("exp-disk1", out));
    expectSameResult(r, out);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    // Promoted to memory: the second lookup is a memory hit.
    ASSERT_TRUE(reader.lookup("exp-disk1", out));
    EXPECT_EQ(reader.stats().memHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Cache, RejectsEntriesFromAnotherCodeVersion)
{
    RunResult r;
    r.workload = "queue";
    r.model = ModelKind::Asap;
    r.persistency = PersistencyModel::Release;
    r.runTicks = 42;
    CachedResult e;
    e.run = r;

    // Every serialized entry carries the running code's salt...
    const std::string text = serializeEntry(e);
    const std::string saltLine =
        std::string("codeSalt ") + cacheCodeSalt() + "\n";
    ASSERT_EQ(text.rfind(saltLine, 0), 0u);

    // ...and an entry stamped by a different version must miss with a
    // reason, not deserialize into stale results.
    const std::string stale =
        "codeSalt different-version\n" + text.substr(saltLine.size());
    CachedResult out;
    std::string why;
    EXPECT_FALSE(deserializeEntry(stale, out, &why));
    EXPECT_NE(why.find("code-salt mismatch"), std::string::npos);

    // Entries written before the salt line existed still load.
    CachedResult legacy;
    EXPECT_TRUE(deserializeEntry(serializeResult(r), legacy, &why))
        << why;
    EXPECT_EQ(legacy.run.runTicks, 42u);
}

TEST(Cache, CleansStaleTmpDroppings)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "asap_exp_tmpclean").string();
    fs::remove_all(dir);
    fs::create_directories(dir);

    const auto touch = [&](const std::string &name) {
        std::ofstream(dir + "/" + name) << "x";
        return dir + "/" + name;
    };
    const std::string stale = touch("exp-1.tmp.123");
    const std::string fresh = touch("exp-2.tmp.456");
    const std::string entry = touch("exp-3");
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));

    // Only tmp files older than the threshold go; a live writer's
    // fresh tmp and real entries stay.
    EXPECT_EQ(cleanStaleCacheTmp(dir, 3600.0), 1u);
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh));
    EXPECT_TRUE(fs::exists(entry));
    fs::remove_all(dir);
}

TEST(Pool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);

    // The pool stays usable after a wait().
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(Pool, WaitWithNoTasksReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
}

TEST(Engine, ParallelMatchesSerialExactly)
{
    setLogQuiet(true);
    SweepSpec spec;
    spec.workloads = {"queue", "cceh"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release},
                   {ModelKind::Hops, PersistencyModel::Release}};
    spec.coreCounts = {2};
    spec.params = tinyParams();

    ResultCache serialCache, parallelCache;
    RunOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    RunOptions parallel;
    parallel.jobs = 8;
    parallel.cache = &parallelCache;

    const SweepResult s = runSweep(spec, serial);
    const SweepResult p = runSweep(spec, parallel);
    ASSERT_EQ(s.results.size(), 4u);
    ASSERT_EQ(p.results.size(), 4u);
    for (std::size_t i = 0; i < s.results.size(); ++i) {
        expectSameResult(s.results[i], p.results[i]);
        // And both must match a direct runExperiment.
        const ExperimentJob &j = s.jobs[i];
        RunResult direct =
            runExperiment(j.workload, j.cfg, j.params);
        expectSameResult(s.results[i], direct);
    }
}

TEST(Engine, DuplicateJobsSimulateOnce)
{
    setLogQuiet(true);
    JobSet set;
    // The shared-baseline-column shape: the same config repeated.
    for (int i = 0; i < 5; ++i) {
        set.add("queue", ModelKind::Baseline,
                PersistencyModel::Release, 2, tinyParams());
    }
    set.add("queue", ModelKind::Asap, PersistencyModel::Release, 2,
            tinyParams());

    ResultCache cache;
    RunOptions opt;
    opt.jobs = 4;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);

    EXPECT_EQ(sr.uniqueRuns, 2u);  // baseline once + asap once
    EXPECT_EQ(sr.cacheHits, 4u);   // four duplicate baseline jobs
    for (std::size_t i = 1; i < 5; ++i)
        expectSameResult(sr.results[0], sr.results[i]);

    // A second sweep over the same cache is served entirely from it.
    const SweepResult again = runJobs(set.jobs(), opt);
    EXPECT_EQ(again.uniqueRuns, 0u);
    EXPECT_EQ(again.cacheHits, 6u);
    for (std::size_t i = 0; i < sr.results.size(); ++i)
        expectSameResult(sr.results[i], again.results[i]);
}

TEST(Engine, TraceMemoizationCountsHitsAndMisses)
{
    setLogQuiet(true);
    clearTraceCache();

    // Three models over the same (workload, cores, params) tuple: the
    // trace is generated once and reused twice, whatever order the
    // pool runs the jobs in (waiters block on the entry, then hit).
    JobSet set;
    set.add("queue", ModelKind::Baseline, PersistencyModel::Release, 2,
            tinyParams());
    set.add("queue", ModelKind::Hops, PersistencyModel::Release, 2,
            tinyParams());
    set.add("queue", ModelKind::Asap, PersistencyModel::Release, 2,
            tinyParams());

    ResultCache cache;
    RunOptions opt;
    opt.jobs = 4;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);
    EXPECT_EQ(sr.uniqueRuns, 3u);
    EXPECT_EQ(sr.traceMisses, 1u);
    EXPECT_EQ(sr.traceHits, 2u);

    // Memoisation must not leak results across configs: a direct,
    // uncached run of each job still matches.
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
        const ExperimentJob &j = sr.jobs[i];
        RunResult direct = runExperiment(j.workload, j.cfg, j.params);
        expectSameResult(sr.results[i], direct);
    }

    // The counters are process-global and monotonic.
    const TraceCacheStats stats = traceCacheStats();
    EXPECT_GE(stats.hits, 2u);
    EXPECT_GE(stats.misses, 1u);
}

TEST(Engine, FindLocatesResultsByTuple)
{
    setLogQuiet(true);
    SweepSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.coreCounts = {1, 2};
    spec.params = tinyParams();

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runSweep(spec, opt);
    const RunResult *r = sr.find("queue", ModelKind::Asap,
                                 PersistencyModel::Release, 2);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->cores, 2u);
    EXPECT_EQ(sr.find("queue", ModelKind::Hops,
                      PersistencyModel::Release, 2),
              nullptr);
}

TEST(Emit, JsonAndCsvCarryEveryJob)
{
    setLogQuiet(true);
    SweepSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release},
                   {ModelKind::Hops, PersistencyModel::Release}};
    spec.coreCounts = {2};
    spec.params = tinyParams();
    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runSweep(spec, opt);

    std::ostringstream json;
    emitJson(json, sr);
    EXPECT_NE(json.str().find("\"uniqueRuns\": 2"), std::string::npos);
    EXPECT_NE(json.str().find("\"model\": \"asap\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"model\": \"hops\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"runTicks\": "), std::string::npos);
    // The sweep header reports trace-memoisation accounting.
    EXPECT_NE(json.str().find("\"traceHits\": "), std::string::npos);
    EXPECT_NE(json.str().find("\"traceMisses\": "), std::string::npos);

    std::ostringstream csv;
    emitCsv(csv, sr);
    // Header + one row per job.
    std::size_t lines = 0;
    for (char c : csv.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 1u + sr.jobs.size());
}

} // namespace
} // namespace asap
