/**
 * @file
 * Unit tests for the PM software runtime: simulated PM space,
 * allocator, trace recorder (ops, fences, locks, sync edges) and the
 * release board.
 */

#include <gtest/gtest.h>

#include "cpu/release_board.hh"
#include "pm/pm_space.hh"
#include "pm/recorder.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

// ---------------------------------------------------------------- space

TEST(PmSpace, AllocAlignment)
{
    PmSpace pm(1 << 20);
    const std::uint64_t a = pm.alloc(100, 64);
    EXPECT_EQ(a % 64, 0u);
    const std::uint64_t b = pm.alloc(8, 8);
    EXPECT_GE(b, a + 100);
}

TEST(PmSpace, ReadWrite64)
{
    PmSpace pm(1 << 20);
    const std::uint64_t a = pm.alloc(64);
    pm.write64(a, 0xdeadbeef);
    EXPECT_EQ(pm.read64(a), 0xdeadbeefu);
    pm.write8(a, 0x11);
    EXPECT_EQ(pm.read8(a), 0x11);
}

TEST(PmSpace, BytesRoundTrip)
{
    PmSpace pm(1 << 20);
    const std::uint64_t a = pm.alloc(128);
    const char msg[] = "persistent memory!";
    pm.writeBytes(a, msg, sizeof(msg));
    char out[sizeof(msg)];
    pm.readBytes(a, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(PmSpace, FreeListReuse)
{
    PmSpace pm(1 << 20);
    const std::uint64_t a = pm.alloc(64);
    pm.write64(a, 123);
    pm.free(a, 64);
    const std::uint64_t b = pm.alloc(64);
    EXPECT_EQ(b, a) << "same size class reuses the freed region";
    EXPECT_EQ(pm.read64(b), 0u) << "reused memory is zeroed";
}

TEST(PmSpace, VolatileRegionDisjoint)
{
    PmSpace pm(1 << 20);
    const std::uint64_t v = pm.allocVolatile(64);
    EXPECT_FALSE(isPmAddr(v));
    EXPECT_TRUE(isPmAddr(pm.alloc(64)));
}

TEST(PmSpaceDeath, OutOfRangePanics)
{
    PmSpace pm(1024);
    EXPECT_DEATH(pm.read64(pmBase + 4096), "out of range");
}

TEST(PmSpaceDeath, ExhaustionIsFatal)
{
    PmSpace pm(1024);
    EXPECT_DEATH(
        {
            for (int i = 0; i < 100; ++i)
                pm.alloc(64);
        },
        "exhausted");
}

// -------------------------------------------------------------- recorder

TEST(Recorder, RecordsStoresWithUniqueTokens)
{
    TraceRecorder rec(2, 1);
    const std::uint64_t a = rec.space().alloc(64);
    rec.store64(0, a, 1);
    rec.store64(1, a, 2);
    TraceSet ts = rec.finish();
    ASSERT_EQ(ts.threads.size(), 2u);
    const TraceOp &s0 = ts.threads[0][0];
    const TraceOp &s1 = ts.threads[1][0];
    EXPECT_EQ(s0.type, OpType::Store);
    EXPECT_TRUE(s0.isPm);
    EXPECT_NE(s0.value, s1.value);
    EXPECT_NE(s0.value, 0u);
}

TEST(Recorder, FunctionalStateUpdated)
{
    TraceRecorder rec(1, 1);
    const std::uint64_t a = rec.space().alloc(64);
    rec.store64(0, a, 42);
    EXPECT_EQ(rec.load64(0, a), 42u);
}

TEST(Recorder, StoreBytesSplitsPerLine)
{
    TraceRecorder rec(1, 1);
    const std::uint64_t a = rec.space().alloc(256, 64);
    rec.storeBytes(0, a, nullptr, 256);
    TraceSet ts = rec.finish();
    unsigned stores = 0;
    for (const TraceOp &op : ts.threads[0])
        stores += op.type == OpType::Store ? 1 : 0;
    EXPECT_EQ(stores, 4u) << "256 B = 4 lines";
}

TEST(Recorder, ComputeMerges)
{
    TraceRecorder rec(1, 1);
    rec.compute(0, 10);
    rec.compute(0, 20);
    TraceSet ts = rec.finish();
    ASSERT_EQ(ts.threads[0].size(), 2u); // compute + End
    EXPECT_EQ(ts.threads[0][0].type, OpType::Compute);
    EXPECT_EQ(ts.threads[0][0].cycles, 30u);
}

TEST(Recorder, FinishAppendsEnd)
{
    TraceRecorder rec(3, 1);
    TraceSet ts = rec.finish();
    for (const auto &thread : ts.threads) {
        ASSERT_EQ(thread.size(), 1u);
        EXPECT_EQ(thread.back().type, OpType::End);
    }
}

TEST(Recorder, LockEdgesPointAtLastReleaser)
{
    TraceRecorder rec(2, 1);
    PmLock lock = rec.makeLock();
    rec.lockAcquire(0, lock);
    rec.lockRelease(0, lock);
    rec.lockAcquire(1, lock);
    rec.lockRelease(1, lock);
    TraceSet ts = rec.finish();

    const TraceOp &acq0 = ts.threads[0][0];
    EXPECT_EQ(acq0.type, OpType::Acquire);
    EXPECT_EQ(acq0.srcThread, -1) << "first acquire has no source";

    const TraceOp &acq1 = ts.threads[1][0];
    EXPECT_EQ(acq1.srcThread, 0);
    EXPECT_EQ(acq1.srcRelease, 1u);
}

TEST(Recorder, ReleaseOrdinalsPerThread)
{
    TraceRecorder rec(2, 1);
    PmLock a = rec.makeLock(), b = rec.makeLock();
    rec.lockAcquire(0, a);
    rec.lockRelease(0, a);
    rec.lockAcquire(0, b);
    rec.lockRelease(0, b);
    rec.lockAcquire(1, b);
    TraceSet ts = rec.finish();
    // Thread 1 depends on thread 0's *second* release.
    const TraceOp &acq = ts.threads[1][0];
    EXPECT_EQ(acq.srcThread, 0);
    EXPECT_EQ(acq.srcRelease, 2u);
}

TEST(RecorderDeath, DoubleAcquirePanics)
{
    TraceRecorder rec(2, 1);
    setLogQuiet(true);
    PmLock lock = rec.makeLock();
    rec.lockAcquire(0, lock);
    EXPECT_DEATH(rec.lockAcquire(1, lock), "deadlock");
}

TEST(RecorderDeath, ReleaseWithoutHoldPanics)
{
    TraceRecorder rec(2, 1);
    setLogQuiet(true);
    PmLock lock = rec.makeLock();
    EXPECT_DEATH(rec.lockRelease(0, lock), "does not hold");
}

TEST(Recorder, FencesRecorded)
{
    TraceRecorder rec(1, 1);
    rec.ofence(0);
    rec.dfence(0);
    TraceSet ts = rec.finish();
    EXPECT_EQ(ts.threads[0][0].type, OpType::OFence);
    EXPECT_EQ(ts.threads[0][1].type, OpType::DFence);
}

// --------------------------------------------------------- release board

TEST(ReleaseBoard, WaitAfterPublishFiresImmediately)
{
    ReleaseBoard board(2);
    board.publish(0, 7);
    bool fired = false;
    board.wait(0, 1, [&]() { fired = true; });
    EXPECT_TRUE(fired);
    EXPECT_EQ(board.epochAt(0, 1), 7u);
}

TEST(ReleaseBoard, WaitBlocksUntilPublish)
{
    ReleaseBoard board(2);
    bool fired = false;
    board.wait(0, 2, [&]() { fired = true; });
    board.publish(0, 1);
    EXPECT_FALSE(fired) << "waiting for ordinal 2";
    board.publish(0, 5);
    EXPECT_TRUE(fired);
}

TEST(ReleaseBoard, MultipleWaiters)
{
    ReleaseBoard board(1);
    int fired = 0;
    board.wait(0, 1, [&]() { ++fired; });
    board.wait(0, 1, [&]() { ++fired; });
    board.publish(0, 3);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(board.count(0), 1u);
}

} // namespace
} // namespace asap
