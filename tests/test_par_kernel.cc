/**
 * @file
 * Domain-parallel event kernel: determinism and rollback.
 *
 * The kernel's contract (src/sim/README.md) is that the parallel
 * engine reproduces the sequential engine bit for bit. These tests
 * hold it to that at both layers: raw EventQueue graphs (per-domain
 * execution order, same-tick tie-breaks, forced misspeculation with
 * checkpoint/rollback) and full-system runs (every deterministic
 * RunResult stat and crash-injection verdicts, conservative and
 * speculative).
 */

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

using namespace asap;

namespace
{

/** Per-domain execution record shared by an event graph's callbacks:
 *  (tick, tag) in execution order. Cross-engine equality of these —
 *  per domain — is the determinism claim; a single global vector
 *  would also impose an order on logically concurrent events in
 *  different domains, which the kernel deliberately does not. */
struct Recorder
{
    EventQueue *eq = nullptr;
    std::vector<std::vector<std::pair<Tick, int>>> order;
};

void coreHop(Recorder &r, unsigned mc, int depth, int tag);

void
mcHop(Recorder &r, unsigned mc, int depth, int tag)
{
    r.order[1 + mc].emplace_back(r.eq->now(), tag);
    if (depth > 0)
        r.eq->scheduleAfterIn(EventQueue::kCoreDomain, 5,
                              [&r, mc, depth, tag] {
                                  coreHop(r, mc, depth, tag);
                              });
}

void
coreHop(Recorder &r, unsigned mc, int depth, int tag)
{
    r.order[0].emplace_back(r.eq->now(), tag);
    r.eq->scheduleAfterIn(EventQueue::mcDomain(mc), 5,
                          [&r, mc, depth, tag] {
                              mcHop(r, mc, depth - 1, tag);
                          });
}

/** Seed the same core<->MC ping-pong graph into @p r's queue: two
 *  MCs, several chains, including same-tick ties (two chains start
 *  at tick 3) so the sequence-key tie-break is exercised. */
void
seedPingPong(Recorder &r)
{
    r.order.assign(3, {});
    int tag = 0;
    for (unsigned mc = 0; mc < 2; ++mc)
        for (Tick t : {Tick{0}, Tick{3}, Tick{3}, Tick{6}}) {
            const int id = tag++;
            r.eq->scheduleIn(EventQueue::kCoreDomain, t,
                             [&r, mc, id] { coreHop(r, mc, 3, id); });
        }
}

TEST(ParKernel, MatchesSequentialOrderPerDomain)
{
    Recorder seq;
    EventQueue seqQ;
    seq.eq = &seqQ;
    seedPingPong(seq);
    EXPECT_TRUE(seqQ.run());

    Recorder par;
    EventQueue parQ;
    parQ.configureParallel(2, 2, 5, 5, 0);
    par.eq = &parQ;
    seedPingPong(par);
    EXPECT_TRUE(parQ.run());

    EXPECT_EQ(seqQ.executed(), parQ.executed());
    for (int d = 0; d < 3; ++d)
        EXPECT_EQ(seq.order[d], par.order[d]) << "domain " << d;
    EXPECT_EQ(parQ.misspeculations(), 0u);
    EXPECT_EQ(parQ.rollbacks(), 0u);
}

TEST(ParKernel, RunLimitStopsBothEnginesAlike)
{
    Recorder seq;
    EventQueue seqQ;
    seq.eq = &seqQ;
    seedPingPong(seq);
    EXPECT_FALSE(seqQ.run(12));

    Recorder par;
    EventQueue parQ;
    parQ.configureParallel(2, 2, 5, 5, 0);
    par.eq = &parQ;
    seedPingPong(par);
    EXPECT_FALSE(parQ.run(12));

    EXPECT_EQ(seqQ.executed(), parQ.executed());
    for (int d = 0; d < 3; ++d)
        EXPECT_EQ(seq.order[d], par.order[d]) << "domain " << d;

    // Resuming to the drain must also agree.
    EXPECT_TRUE(seqQ.run());
    EXPECT_TRUE(parQ.run());
    EXPECT_EQ(seqQ.executed(), parQ.executed());
    for (int d = 0; d < 3; ++d)
        EXPECT_EQ(seq.order[d], par.order[d]) << "domain " << d;
}

TEST(ParKernel, ForcedMisspeculationRollsBackAndReplays)
{
    // One MC, one host thread (the full parallel protocol on the
    // calling thread), latencies 10/10, a 100-tick spec window.
    EventQueue eq;
    eq.configureParallel(1, 1, 10, 10, 100);

    // The "component state" the checkpoint hooks guard: the MC-side
    // execution record. Save snapshots its length, restore truncates
    // back — exactly the discipline the memory controller implements.
    std::vector<Tick> mcTicks;
    std::vector<Tick> coreTicks;
    std::size_t savedLen = 0;
    int saves = 0, restores = 0, discards = 0;
    eq.setCheckpointHooks(
        EventQueue::mcDomain(0),
        [&] { ++saves; savedLen = mcTicks.size(); },
        [&] { ++restores; mcTicks.resize(savedLen); },
        [&] { ++discards; });

    // Core event at 0 sends into the MC at 10; the MC's own heap
    // holds 12/15/25. Round 1 bounds: earliestCore = 0, so the MC may
    // only run below 10 conservatively — its front (12) is starved,
    // so it speculates to 110 and executes 12, 15, 25. At the
    // barrier the buffered send at 10 lands at or below 25: the
    // window is invalid and must roll back, then replay after the
    // arrival is routed.
    eq.scheduleIn(EventQueue::kCoreDomain, 0, [&] {
        coreTicks.push_back(eq.now());
        eq.scheduleAfterIn(EventQueue::mcDomain(0), 10,
                           [&] { mcTicks.push_back(eq.now()); });
    });
    for (Tick t : {Tick{12}, Tick{15}, Tick{25}})
        eq.scheduleIn(EventQueue::mcDomain(0), t,
                      [&] { mcTicks.push_back(eq.now()); });

    EXPECT_TRUE(eq.run());

    EXPECT_EQ(eq.misspeculations(), 1u);
    EXPECT_EQ(eq.rollbacks(), 1u);
    EXPECT_GE(eq.parallelRounds(), 1u);
    EXPECT_EQ(saves, 1);
    EXPECT_EQ(restores, 1);
    EXPECT_EQ(discards, 0);

    // The rolled-back window left no trace: the final record is the
    // sequential order, each event executed exactly once.
    EXPECT_EQ(coreTicks, (std::vector<Tick>{0}));
    EXPECT_EQ(mcTicks, (std::vector<Tick>{10, 12, 15, 25}));
    EXPECT_EQ(eq.executed(), 5u);
    EXPECT_FALSE(eq.tainted());
}

TEST(ParKernel, ValidSpeculationCommitsWithoutRollback)
{
    // Same shape, but the core's send lands at 40 — past everything
    // the MC speculated — so the window validates and commits.
    EventQueue eq;
    eq.configureParallel(1, 1, 10, 10, 100);

    std::vector<Tick> mcTicks;
    std::size_t savedLen = 0;
    int saves = 0, restores = 0, discards = 0;
    eq.setCheckpointHooks(
        EventQueue::mcDomain(0),
        [&] { ++saves; savedLen = mcTicks.size(); },
        [&] { ++restores; mcTicks.resize(savedLen); },
        [&] { ++discards; });

    eq.scheduleIn(EventQueue::kCoreDomain, 0, [&] {
        eq.scheduleAfterIn(EventQueue::mcDomain(0), 40,
                           [&] { mcTicks.push_back(eq.now()); });
    });
    for (Tick t : {Tick{12}, Tick{15}, Tick{25}})
        eq.scheduleIn(EventQueue::mcDomain(0), t,
                      [&] { mcTicks.push_back(eq.now()); });

    EXPECT_TRUE(eq.run());

    EXPECT_EQ(eq.misspeculations(), 0u);
    EXPECT_EQ(eq.rollbacks(), 0u);
    EXPECT_GE(eq.parallelRounds(), 1u);
    EXPECT_EQ(saves, 1);
    EXPECT_EQ(restores, 0);
    EXPECT_EQ(discards, 1);
    EXPECT_EQ(mcTicks, (std::vector<Tick>{12, 15, 25, 40}));
    EXPECT_EQ(eq.executed(), 5u);
}

// --- full-system parity ---------------------------------------------

/** Every deterministic RunResult field (host-side telemetry —
 *  hostNs, parDomains, parRounds, spec counters — excluded by
 *  design; see runner.hh). */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.pmReads, b.pmReads);
    EXPECT_EQ(a.cyclesBlocked, b.cyclesBlocked);
    EXPECT_EQ(a.cyclesStalled, b.cyclesStalled);
    EXPECT_EQ(a.dfenceStalled, b.dfenceStalled);
    EXPECT_EQ(a.sfenceStalled, b.sfenceStalled);
    EXPECT_EQ(a.entriesInserted, b.entriesInserted);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.crossDeps, b.crossDeps);
    EXPECT_EQ(a.totSpecWrites, b.totSpecWrites);
    EXPECT_EQ(a.totalUndo, b.totalUndo);
    EXPECT_EQ(a.totalDelay, b.totalDelay);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.rtMaxOccupancy, b.rtMaxOccupancy);
    EXPECT_DOUBLE_EQ(a.pbOccMean, b.pbOccMean);
    EXPECT_EQ(a.pbOccP99, b.pbOccP99);
    EXPECT_EQ(a.wpqCoalesced, b.wpqCoalesced);
    EXPECT_EQ(a.suppressedWrites, b.suppressedWrites);
    EXPECT_EQ(a.xpHits, b.xpHits);
    EXPECT_EQ(a.xpMisses, b.xpMisses);
    EXPECT_EQ(a.mediaBytesWritten, b.mediaBytesWritten);
    EXPECT_EQ(a.mediaQueueDelayTicks, b.mediaQueueDelayTicks);
    EXPECT_EQ(a.mediaBankBusyTicks, b.mediaBankBusyTicks);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.opsPerThread = 60;
    return p;
}

TEST(ParKernelSystem, RunResultsMatchSequentialAllModels)
{
    const WorkloadParams p = smallParams();
    for (ModelKind m : {ModelKind::Baseline, ModelKind::Hops,
                        ModelKind::Asap, ModelKind::Eadr}) {
        SimConfig seq;
        seq.model = m;
        const RunResult a = runExperiment("queue", seq, p);
        EXPECT_EQ(a.parDomains, 1u);

        SimConfig par = seq;
        par.parDomains = 4;
        const RunResult b = runExperiment("queue", par, p);
        EXPECT_GT(b.parDomains, 1u) << toString(m);

        SCOPED_TRACE(toString(m));
        expectSameResult(a, b);
    }
}

TEST(ParKernelSystem, SpeculativeRunMatchesSequential)
{
    const WorkloadParams p = smallParams();
    SimConfig seq; // ASAP model — the RT/NACK-heavy path
    const RunResult a = runExperiment("cceh", seq, p);

    SimConfig par = seq;
    par.parDomains = 4;
    par.parSpecWindow = 64;
    const RunResult b = runExperiment("cceh", par, p);
    EXPECT_GT(b.parDomains, 1u);

    expectSameResult(a, b);
}

TEST(ParKernelSystem, CrashVerdictsMatchSequential)
{
    const WorkloadParams p = smallParams();
    SimConfig seq;
    const RunResult full = runExperiment("cceh", seq, p);
    const Tick crash = full.runTicks / 2;

    const CrashRunResult a = runCrashExperiment("cceh", seq, p, crash);

    SimConfig par = seq;
    par.parDomains = 4;
    par.parSpecWindow = 64;
    const CrashRunResult b = runCrashExperiment("cceh", par, p, crash);

    EXPECT_EQ(a.verdict.consistent, b.verdict.consistent);
    EXPECT_EQ(a.verdict.message, b.verdict.message);
    EXPECT_EQ(a.verdict.crashTick, b.verdict.crashTick);
    EXPECT_EQ(a.verdict.actualTick, b.verdict.actualTick);
    EXPECT_EQ(a.verdict.committedUpTo, b.verdict.committedUpTo);
    EXPECT_EQ(a.verdict.storesLogged, b.verdict.storesLogged);
    EXPECT_EQ(a.verdict.linesSurvived, b.verdict.linesSurvived);
    EXPECT_EQ(a.verdict.undoReplayed, b.verdict.undoReplayed);
    EXPECT_EQ(a.verdict.adrDrainWrites, b.verdict.adrDrainWrites);
    expectSameResult(a.run, b.run);
}

} // namespace
