/**
 * @file
 * Tests for the experiment runner and the microbenchmark generators
 * the benches rely on.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "pm/recorder.hh"
#include "sim/log.hh"
#include "workloads/synthetic.hh"

namespace asap
{
namespace
{

TEST(Runner, FillsAllFigureFields)
{
    setLogQuiet(true);
    WorkloadParams p;
    p.opsPerThread = 30;
    RunResult r = runExperiment("dash-eh", ModelKind::Asap,
                                PersistencyModel::Release, 4, p);
    EXPECT_EQ(r.workload, "dash-eh");
    EXPECT_EQ(r.model, ModelKind::Asap);
    EXPECT_EQ(r.cores, 4u);
    EXPECT_GT(r.runTicks, 0u);
    EXPECT_GT(r.pmWrites, 0u);
    EXPECT_GT(r.epochs, 0u);
    EXPECT_GT(r.totalCoreCycles(), r.runTicks);
}

TEST(Runner, BandwidthMicrobenchByName)
{
    setLogQuiet(true);
    WorkloadParams p;
    p.opsPerThread = 20;
    RunResult r = runExperiment("bandwidth", ModelKind::Asap,
                                PersistencyModel::Release, 4, p);
    // 20 bursts x 4 lines x 4 threads = 320 stores issued.
    EXPECT_GE(r.entriesInserted, 300u);
}

TEST(Runner, HandoffMicrobenchByName)
{
    setLogQuiet(true);
    WorkloadParams p;
    p.opsPerThread = 25;
    RunResult hops = runExperiment("handoff", ModelKind::Hops,
                                   PersistencyModel::Release, 4, p);
    RunResult asap = runExperiment("handoff", ModelKind::Asap,
                                   PersistencyModel::Release, 4, p);
    // The entire point of the microbench: CDR beats polling clearly.
    EXPECT_LT(asap.runTicks * 2, hops.runTicks);
    EXPECT_GT(hops.crossDeps, 50u);
}

TEST(Runner, CustomConfigRespected)
{
    setLogQuiet(true);
    WorkloadParams p;
    p.opsPerThread = 20;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.numCores = 2;
    cfg.numMCs = 4;
    RunResult r = runExperiment("echo", cfg, p);
    EXPECT_EQ(r.cores, 2u);
    EXPECT_GT(r.runTicks, 0u);
}

TEST(HandoffGen, EveryHandoffHasAnEdge)
{
    TraceRecorder rec(4, 3);
    genHandoffMicrobench(rec, 10);
    TraceSet ts = rec.finish();
    unsigned edged = 0, acquires = 0;
    for (const auto &ops : ts.threads) {
        for (const TraceOp &op : ops) {
            if (op.type == OpType::Acquire) {
                ++acquires;
                edged += op.srcThread >= 0 ? 1 : 0;
            }
        }
    }
    EXPECT_EQ(acquires, 40u);
    EXPECT_EQ(edged, 39u) << "all but the very first acquire chain";
}

} // namespace
} // namespace asap
