/**
 * @file
 * Unit tests for the Recovery Table: the full Table I decision
 * matrix, the Figure 5 write-collision scenario, NACK back-pressure,
 * commit processing and crash rewind.
 */

#include <gtest/gtest.h>

#include "core/recovery_table.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

struct RtFixture : public ::testing::Test
{
    StatSet stats;
    RecoveryTable rt{0, 8, stats};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;

    RtFixture() { setLogQuiet(true); }

    WriteOutFn
    sink()
    {
        return [this](std::uint64_t line, std::uint64_t value) {
            writes.emplace_back(line, value);
        };
    }

    static FlushPacket
    safeF(std::uint64_t line, std::uint64_t value, std::uint16_t t,
          std::uint64_t e)
    {
        return FlushPacket{line, value, t, e, false};
    }

    static FlushPacket
    earlyF(std::uint64_t line, std::uint64_t value, std::uint16_t t,
           std::uint64_t e)
    {
        return FlushPacket{line, value, t, e, true};
    }
};

// Table I row 1 / column 1: safe flush, no undo -> write memory.
TEST_F(RtFixture, SafeFlushNoUndoWritesThrough)
{
    EXPECT_EQ(rt.onFlush(safeF(1, 10, 0, 1), 0),
              FlushAction::WriteMemory);
    EXPECT_EQ(rt.occupancy(), 0u);
}

// Table I row 2 / column 1: early flush, no undo -> create undo and
// speculatively update memory.
TEST_F(RtFixture, EarlyFlushCreatesUndo)
{
    EXPECT_EQ(rt.onFlush(earlyF(1, 10, 0, 2), /*current=*/5),
              FlushAction::CreateUndoAndWrite);
    EXPECT_TRUE(rt.hasUndo(1));
    EXPECT_EQ(rt.undoValue(1), 5u) << "undo snapshots the old value";
    EXPECT_EQ(rt.occupancy(), 1u);
    EXPECT_EQ(stats.get("rt.totalUndo"), 1u);
}

// Table I row 1 / column 2: safe flush with undo from a *younger*
// epoch -> the safe value is absorbed into the undo record.
TEST_F(RtFixture, SafeFlushUpdatesUndoOfYoungerEpoch)
{
    rt.onFlush(earlyF(1, 30, 1, 7), 0); // thread 1, epoch 7 speculates
    EXPECT_EQ(rt.onFlush(safeF(1, 20, 0, 3), 30),
              FlushAction::SuppressWrite);
    EXPECT_EQ(rt.undoValue(1), 20u)
        << "the safe value becomes the rewind target";
}

// Same-epoch exception: a safe flush whose epoch *created* the undo
// is newer than the speculative memory value and must write through.
TEST_F(RtFixture, SameEpochSafeFlushWritesThrough)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 5);
    EXPECT_EQ(rt.onFlush(safeF(1, 11, 0, 2), 10),
              FlushAction::WriteMemory);
    EXPECT_EQ(rt.undoValue(1), 5u) << "undo keeps the pre-epoch value";
}

// Table I row 2 / column 2: early flush with undo present -> delay.
TEST_F(RtFixture, EarlyFlushWithUndoCreatesDelay)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 0);
    EXPECT_EQ(rt.onFlush(earlyF(1, 20, 1, 5), 10),
              FlushAction::CreateDelay);
    EXPECT_EQ(rt.delayCount(), 1u);
    EXPECT_EQ(rt.occupancy(), 2u);
}

TEST_F(RtFixture, SameEpochDelaysCoalesce)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 0);
    rt.onFlush(earlyF(1, 20, 1, 5), 10);
    EXPECT_EQ(rt.onFlush(earlyF(1, 25, 1, 5), 10),
              FlushAction::CreateDelay);
    EXPECT_EQ(rt.delayCount(), 1u) << "coalesced in place";
    EXPECT_EQ(stats.get("rt.delayCoalesced"), 1u);
}

// Figure 5: two early flushes to A arrive out of order (A=3 then
// A=2); the delay record preserves the correct final state.
TEST_F(RtFixture, Figure5WriteCollision)
{
    // Initially A=0. Thread 3 (epoch e3) flushes A=3 early first.
    EXPECT_EQ(rt.onFlush(earlyF(0xA, 3, 3, 30), 0),
              FlushAction::CreateUndoAndWrite);
    // Thread 2's A=2 (epoch e2, older in line order) arrives early.
    EXPECT_EQ(rt.onFlush(earlyF(0xA, 2, 2, 20), 3),
              FlushAction::CreateDelay);
    // Crash now: rewind restores A=0 (not the stale A=3 scenario the
    // naive design would produce).
    rt.onCrash(sink());
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], (std::pair<std::uint64_t, std::uint64_t>(
                             0xA, 0)));
}

TEST_F(RtFixture, Figure5CollisionCommitOrder)
{
    rt.onFlush(earlyF(0xA, 3, 3, 30), 0);
    rt.onFlush(earlyF(0xA, 2, 2, 20), 3);
    // Epoch e2 (older) commits first: its delayed value becomes the
    // safe value inside the undo record.
    rt.onCommit(2, 20, sink());
    EXPECT_TRUE(writes.empty());
    EXPECT_EQ(rt.undoValue(0xA), 2u);
    // Crash here: memory rewinds to A=2.
    rt.onCrash(sink());
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0].second, 2u);
}

TEST_F(RtFixture, CommitDeletesUndoAndReleasesDelays)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 0);  // undo by (0, 2)
    rt.onFlush(earlyF(1, 20, 1, 5), 10); // delay by (1, 5)
    rt.onCommit(0, 2, sink());
    EXPECT_FALSE(rt.hasUndo(1));
    EXPECT_TRUE(writes.empty()) << "delay of (1,5) not yet released";
    rt.onCommit(1, 5, sink());
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], (std::pair<std::uint64_t, std::uint64_t>(
                             1, 20)));
    EXPECT_EQ(rt.occupancy(), 0u);
}

TEST_F(RtFixture, SameEpochUndoThenDelayCommitsNewestValue)
{
    // Two same-epoch early flushes to one line: undo then delay.
    rt.onFlush(earlyF(1, 10, 0, 2), 5);
    rt.onFlush(earlyF(1, 11, 0, 2), 10);
    rt.onCommit(0, 2, sink());
    // The undo dies first, then the delayed (newer) value reaches
    // memory.
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0].second, 11u);
}

TEST_F(RtFixture, NackWhenFull)
{
    // Fill all 8 slots with undos on distinct lines.
    for (std::uint64_t l = 0; l < 8; ++l)
        EXPECT_EQ(rt.onFlush(earlyF(l, l + 100, 0, 2), 0),
                  FlushAction::CreateUndoAndWrite);
    EXPECT_EQ(rt.onFlush(earlyF(99, 1, 0, 2), 0), FlushAction::Nack);
    EXPECT_EQ(stats.get("rt.nacks"), 1u);
    EXPECT_TRUE(rt.nackPending(99));
}

TEST_F(RtFixture, NackAlsoForDelayWhenFull)
{
    for (std::uint64_t l = 0; l < 7; ++l)
        rt.onFlush(earlyF(l, l, 0, 2), 0);
    rt.onFlush(earlyF(0, 50, 1, 9), 0); // delay: table now full
    EXPECT_EQ(rt.occupancy(), 8u);
    EXPECT_EQ(rt.onFlush(earlyF(0, 60, 2, 11), 0), FlushAction::Nack);
}

TEST_F(RtFixture, SafeFlushNeverNacked)
{
    for (std::uint64_t l = 0; l < 8; ++l)
        rt.onFlush(earlyF(l, l, 0, 2), 0);
    EXPECT_EQ(rt.onFlush(safeF(100, 1, 0, 1), 0),
              FlushAction::WriteMemory);
}

TEST_F(RtFixture, RetriedSafeFlushClearsNack)
{
    for (std::uint64_t l = 0; l < 8; ++l)
        rt.onFlush(earlyF(l, l, 0, 2), 0);
    rt.onFlush(earlyF(99, 1, 0, 3), 0); // NACKed
    EXPECT_TRUE(rt.nackPending(99));
    rt.onFlush(safeF(99, 1, 0, 3), 0); // retried once safe
    EXPECT_FALSE(rt.nackPending(99));
}

TEST_F(RtFixture, MaxOccupancyStat)
{
    rt.onFlush(earlyF(1, 1, 0, 2), 0);
    rt.onFlush(earlyF(2, 2, 0, 2), 0);
    EXPECT_EQ(stats.get("rt.maxOccupancy"), 2u);
    rt.onCommit(0, 2, sink());
    EXPECT_EQ(stats.get("rt.maxOccupancy"), 2u) << "max is sticky";
}

TEST_F(RtFixture, CrashDiscardsDelays)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 0);
    rt.onFlush(earlyF(1, 20, 1, 5), 10);
    rt.onCrash(sink());
    ASSERT_EQ(writes.size(), 1u) << "only the undo rewinds";
    EXPECT_EQ(writes[0].second, 0u);
    EXPECT_EQ(rt.occupancy(), 0u);
}

TEST_F(RtFixture, CommitOfUnknownEpochIsNoop)
{
    rt.onFlush(earlyF(1, 10, 0, 2), 0);
    rt.onCommit(5, 99, sink());
    EXPECT_TRUE(rt.hasUndo(1));
    EXPECT_TRUE(writes.empty());
}

// Lemma 1.2 executable check: no records for a line => the memory
// value belongs to a safe/committed epoch. Exercised by: undo
// lifecycle always ends with deletion on commit or rewind on crash.
TEST_F(RtFixture, UndoLifecycleLeavesNoResidue)
{
    for (int round = 0; round < 50; ++round) {
        const std::uint64_t line = round % 8;
        rt.onFlush(earlyF(line, round, 0, round + 1), round);
        rt.onCommit(0, round + 1, sink());
    }
    EXPECT_EQ(rt.occupancy(), 0u);
}

} // namespace
} // namespace asap
