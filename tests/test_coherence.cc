/**
 * @file
 * Unit tests for the cache/coherence substrate: tag arrays, hit
 * levels, conflict (cross-thread dependency) detection, LLC PM
 * eviction handling.
 */

#include <gtest/gtest.h>

#include "coherence/cache_array.hh"
#include "coherence/cache_hierarchy.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

// ------------------------------------------------------------ cache array

TEST(CacheArray, MissThenHit)
{
    CacheArray arr(4, 2);
    EXPECT_FALSE(arr.access(100, false));
    arr.insert(100, false);
    EXPECT_TRUE(arr.access(100, false));
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray arr(1, 2); // one set, two ways
    arr.insert(1, false);
    arr.insert(2, false);
    arr.access(1, false); // 2 becomes LRU
    CacheArray::Victim v = arr.insert(3, false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.line, 2u);
}

TEST(CacheArray, DirtyTracking)
{
    CacheArray arr(1, 1);
    arr.insert(5, false);
    arr.access(5, true); // write marks dirty
    CacheArray::Victim v = arr.insert(6, false);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
}

TEST(CacheArray, CleanClearsDirty)
{
    CacheArray arr(1, 1);
    arr.insert(5, true);
    arr.clean(5);
    CacheArray::Victim v = arr.insert(6, false);
    EXPECT_FALSE(v.dirty);
}

TEST(CacheArray, InvalidateRemoves)
{
    CacheArray arr(2, 2);
    arr.insert(4, false);
    arr.invalidate(4);
    EXPECT_FALSE(arr.contains(4));
    EXPECT_EQ(arr.population(), 0u);
}

TEST(CacheArray, SetsAreIndependent)
{
    CacheArray arr(2, 1);
    arr.insert(0, false); // set 0
    arr.insert(1, false); // set 1
    EXPECT_TRUE(arr.contains(0));
    EXPECT_TRUE(arr.contains(1));
    arr.insert(2, false); // set 0 again: evicts 0, not 1
    EXPECT_FALSE(arr.contains(0));
    EXPECT_TRUE(arr.contains(1));
}

// -------------------------------------------------------- cache hierarchy

struct CacheFixture : public ::testing::Test
{
    SimConfig cfg;
    StatSet stats;

    CacheFixture()
    {
        setLogQuiet(true);
        // Small caches so misses are easy to force.
        cfg.l1Sets = 4;
        cfg.l1Ways = 2;
        cfg.l2Sets = 8;
        cfg.l2Ways = 2;
        cfg.llcSets = 16;
        cfg.llcWays = 2;
    }
};

TEST_F(CacheFixture, LatencyLaddersByLevel)
{
    CacheHierarchy ch(cfg, stats);
    // Cold: PM fill.
    CacheAccess a = ch.access(0, 100, false, true);
    EXPECT_EQ(a.latency, cfg.pmReadLatency);
    // Warm: L1 hit.
    a = ch.access(0, 100, false, true);
    EXPECT_EQ(a.latency, cfg.l1Latency);
}

TEST_F(CacheFixture, VolatileMissUsesDram)
{
    CacheHierarchy ch(cfg, stats);
    CacheAccess a = ch.access(0, 100, false, false);
    EXPECT_EQ(a.latency, cfg.dramLatency);
}

TEST_F(CacheFixture, SharedLlcServesOtherCores)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, false, true);      // core 0 fills LLC
    CacheAccess a = ch.access(1, 100, false, true);
    EXPECT_EQ(a.latency, cfg.llcLatency) << "core 1 hits shared LLC";
}

TEST_F(CacheFixture, WriteThenRemoteReadConflicts)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, true, true);
    CacheAccess a = ch.access(1, 100, false, true);
    EXPECT_TRUE(a.conflict);
    EXPECT_EQ(a.srcThread, 0u);
    EXPECT_EQ(a.latency, cfg.cacheToCacheLatency);
}

TEST_F(CacheFixture, ReadDowngradeStopsFurtherConflicts)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, true, true);
    ch.access(1, 100, false, true); // conflict, downgrades
    CacheAccess a = ch.access(2, 100, false, true);
    EXPECT_FALSE(a.conflict) << "line no longer modified";
}

TEST_F(CacheFixture, WriteAfterRemoteWriteConflicts)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, true, true);
    CacheAccess a = ch.access(1, 100, true, true);
    EXPECT_TRUE(a.conflict);
    EXPECT_EQ(a.srcThread, 0u);
    EXPECT_EQ(ch.lastWriter(100), 1);
}

TEST_F(CacheFixture, SelfAccessNeverConflicts)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, true, true);
    CacheAccess a = ch.access(0, 100, true, true);
    EXPECT_FALSE(a.conflict);
}

TEST_F(CacheFixture, CleanLineStopsConflict)
{
    CacheHierarchy ch(cfg, stats);
    ch.access(0, 100, true, true);
    ch.cleanLine(0, 100); // clwb semantics
    CacheAccess a = ch.access(1, 100, false, true);
    EXPECT_FALSE(a.conflict);
}

TEST_F(CacheFixture, LlcDirtyEvictionReported)
{
    CacheHierarchy ch(cfg, stats);
    bool filter_called = false;
    ch.setEvictFilter([&](std::uint64_t) {
        filter_called = true;
        return false;
    });
    // Write many distinct PM lines mapping to one LLC set to force a
    // dirty eviction (LLC has 16 sets x 2 ways here).
    for (std::uint64_t i = 0; i < 8; ++i)
        ch.access(0, i * 16, true, true);
    EXPECT_GT(stats.get("cache.llcDirtyEvicts"), 0u);
    EXPECT_TRUE(filter_called);
}

TEST_F(CacheFixture, EvictFilterDelayCounted)
{
    CacheHierarchy ch(cfg, stats);
    ch.setEvictFilter([](std::uint64_t) { return true; });
    for (std::uint64_t i = 0; i < 8; ++i)
        ch.access(0, i * 16, true, true);
    EXPECT_GT(stats.get("cache.llcEvictDelayed"), 0u);
}

TEST_F(CacheFixture, LastWriterUnknownInitially)
{
    CacheHierarchy ch(cfg, stats);
    EXPECT_EQ(ch.lastWriter(999), -1);
}

} // namespace
} // namespace asap
