/**
 * @file
 * Tests for the replay core and full-System behaviour: op semantics,
 * cross-thread synchronisation in simulated time, EP conflict
 * detection, run-log fidelity.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "pm/pm_space.hh"
#include "pm/recorder.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

TraceSet
emptyTrace(unsigned threads)
{
    TraceRecorder rec(threads, 1);
    return rec.finish();
}

TEST(CoreReplay, EmptyTraceFinishesImmediately)
{
    setLogQuiet(true);
    SimConfig cfg;
    System sys(cfg);
    sys.loadTrace(emptyTrace(cfg.numCores));
    EXPECT_TRUE(sys.run());
    EXPECT_GE(sys.stats().get("core.threadsFinished"), 4u);
}

TEST(CoreReplay, ComputeAdvancesTime)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 1;
    TraceRecorder rec(1, 1);
    rec.compute(0, 1000);
    System sys(cfg);
    sys.loadTrace(rec.finish());
    EXPECT_TRUE(sys.run());
    EXPECT_GE(sys.runTicks(), 1000u);
}

TEST(CoreReplay, StoresReachMediaUnderAsap)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 1;
    TraceRecorder rec(1, 1);
    const std::uint64_t a = rec.space().alloc(64);
    rec.store64(0, a, 42);
    rec.dfence(0);
    TraceSet ts = rec.finish();
    const std::uint64_t token = ts.threads[0][0].value;
    System sys(cfg);
    sys.loadTrace(std::move(ts));
    EXPECT_TRUE(sys.run());
    EXPECT_EQ(sys.nvm().read(lineOf(a)), token);
}

TEST(CoreReplay, AcquireWaitsForRelease)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 2;
    TraceRecorder rec(2, 1);
    PmLock lock = rec.makeLock();
    // Thread 0: long compute, then release. Thread 1: acquire first.
    rec.lockAcquire(0, lock);
    rec.compute(0, 5000);
    rec.lockRelease(0, lock);
    rec.lockAcquire(1, lock);
    rec.lockRelease(1, lock);
    System sys(cfg);
    sys.loadTrace(rec.finish());
    EXPECT_TRUE(sys.run());
    // Thread 1 had to wait out thread 0's critical section.
    EXPECT_GE(sys.runTicks(), 5000u);
}

TEST(CoreReplay, EpConflictsCreateDependencies)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.persistency = PersistencyModel::Epoch;
    cfg.model = ModelKind::Asap;
    TraceRecorder rec(2, 1);
    const std::uint64_t a = rec.space().alloc(64);
    // Both threads write the same line: a conflicting access.
    rec.store64(0, a, 1);
    rec.compute(0, 50);
    rec.compute(1, 500); // thread 1 writes later in sim time
    rec.store64(1, a, 2);
    System sys(cfg, true);
    sys.loadTrace(rec.finish());
    EXPECT_TRUE(sys.run());
    EXPECT_GT(sys.stats().get("et.interTEpochConflict"), 0u);
    EXPECT_FALSE(sys.runLog().allEdges().empty());
}

TEST(CoreReplay, RpIgnoresDataConflicts)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.persistency = PersistencyModel::Release;
    cfg.model = ModelKind::Asap;
    TraceRecorder rec(2, 1);
    const std::uint64_t a = rec.space().alloc(64);
    rec.store64(0, a, 1);
    rec.compute(1, 500);
    rec.store64(1, a, 2);
    System sys(cfg, true);
    sys.loadTrace(rec.finish());
    EXPECT_TRUE(sys.run());
    EXPECT_EQ(sys.stats().get("et.interTEpochConflict"), 0u)
        << "RP only tracks acquire/release dependencies";
}

TEST(CoreReplay, RunLogMatchesTrace)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 1;
    TraceRecorder rec(1, 1);
    const std::uint64_t a = rec.space().alloc(256, 64);
    for (int i = 0; i < 4; ++i)
        rec.store64(0, a + 64ull * i, i);
    System sys(cfg, true);
    sys.loadTrace(rec.finish());
    EXPECT_TRUE(sys.run());
    EXPECT_EQ(sys.runLog().allStores().size(), 4u);
}

TEST(CoreReplay, MismatchedThreadCountIsFatal)
{
    setLogQuiet(true);
    SimConfig cfg; // 4 cores
    System sys(cfg);
    EXPECT_DEATH(sys.loadTrace(emptyTrace(2)), "4 cores");
}

TEST(CoreReplay, CrashBeforeStartLeavesMediaEmpty)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 1;
    TraceRecorder rec(1, 1);
    const std::uint64_t a = rec.space().alloc(64);
    rec.store64(0, a, 1);
    System sys(cfg);
    sys.loadTrace(rec.finish());
    sys.crashAt(0);
    EXPECT_TRUE(sys.nvm().all().empty());
}

TEST(CoreReplay, MaxRunTicksReportsFailure)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.numCores = 1;
    cfg.maxRunTicks = 10;
    TraceRecorder rec(1, 1);
    rec.compute(0, 100000);
    System sys(cfg);
    sys.loadTrace(rec.finish());
    EXPECT_FALSE(sys.run());
}

} // namespace
} // namespace asap
