/**
 * @file
 * Robustness sweeps: pathological configurations (tiny buffers,
 * single banks, one or many controllers, line-grained interleave)
 * must still run to completion and, under ASAP, crash consistently.
 * Plus trace serialization round-trips and replay equivalence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/system.hh"
#include "pm/trace_io.hh"
#include "recovery/checker.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

namespace asap
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.opsPerThread = 25;
    p.seed = 4;
    return p;
}

/** One named configuration mutation. */
struct ConfigCase
{
    const char *name;
    const char *override1;
    const char *override2;
};

class PathologicalConfigs : public ::testing::TestWithParam<ConfigCase>
{
};

TEST_P(PathologicalConfigs, RunsAndCrashesConsistently)
{
    setLogQuiet(true);
    const ConfigCase &c = GetParam();
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.override(c.override1);
    if (c.override2)
        cfg.override(c.override2);
    cfg.maxRunTicks = 2'000'000'000ULL;

    // Liveness.
    {
        System sys(cfg);
        sys.loadTrace(buildTrace("cceh", cfg.numCores, tinyParams()));
        EXPECT_TRUE(sys.run()) << c.name << " deadlocked";
    }
    // Crash consistency.
    {
        System sys(cfg, /*keep_run_log=*/true);
        sys.loadTrace(buildTrace("cceh", cfg.numCores, tinyParams()));
        sys.crashAt(30'000);
        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        EXPECT_TRUE(r.ok) << c.name << ": " << r.message;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PathologicalConfigs,
    ::testing::Values(
        ConfigCase{"oneMc", "numMCs=1", nullptr},
        ConfigCase{"fourMcs", "numMCs=4", nullptr},
        ConfigCase{"lineInterleave", "interleaveBytes=64", nullptr},
        ConfigCase{"tinyWpq", "wpqEntries=2", "nvmBanks=1"},
        ConfigCase{"tinyPb", "pbEntries=4", "pbMaxInflight=1"},
        ConfigCase{"tinyEt", "etEntries=4", nullptr},
        ConfigCase{"tinyRt", "rtEntries=2", nullptr},
        ConfigCase{"noCombine", "wpqCombineWindow=0", nullptr},
        ConfigCase{"slowNvm", "pmWriteLatency=720", nullptr},
        ConfigCase{"noXpBuffer", "xpBufferLines=0", nullptr},
        ConfigCase{"eightCores", "numCores=8", nullptr}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.name;
    });

// ----------------------------------------------------------- trace io

TEST(TraceIo, RoundTripPreservesOps)
{
    setLogQuiet(true);
    WorkloadParams p = tinyParams();
    TraceSet original = buildTrace("echo", 4, p);
    const std::string path = "/tmp/asap_trace_roundtrip.bin";
    saveTrace(original, path);
    TraceSet loaded = loadTrace(path);

    ASSERT_EQ(loaded.threads.size(), original.threads.size());
    for (std::size_t t = 0; t < original.threads.size(); ++t) {
        ASSERT_EQ(loaded.threads[t].size(), original.threads[t].size());
        for (std::size_t i = 0; i < original.threads[t].size(); ++i) {
            const TraceOp &a = original.threads[t][i];
            const TraceOp &b = loaded.threads[t][i];
            EXPECT_EQ(a.type, b.type);
            EXPECT_EQ(a.isPm, b.isPm);
            EXPECT_EQ(a.cycles, b.cycles);
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.value, b.value);
            EXPECT_EQ(a.srcThread, b.srcThread);
            EXPECT_EQ(a.srcRelease, b.srcRelease);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayOfLoadedTraceIsIdentical)
{
    setLogQuiet(true);
    WorkloadParams p = tinyParams();
    const std::string path = "/tmp/asap_trace_replay.bin";
    saveTrace(buildTrace("p-clht", 4, p), path);

    SimConfig cfg;
    Tick direct = 0, reloaded = 0;
    {
        System sys(cfg);
        sys.loadTrace(buildTrace("p-clht", 4, p));
        ASSERT_TRUE(sys.run());
        direct = sys.runTicks();
    }
    {
        System sys(cfg);
        sys.loadTrace(loadTrace(path));
        ASSERT_TRUE(sys.run());
        reloaded = sys.runTicks();
    }
    EXPECT_EQ(direct, reloaded);
    std::remove(path.c_str());
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    setLogQuiet(true);
    EXPECT_DEATH(loadTrace("/tmp/definitely_missing_asap_trace.bin"),
                 "cannot open");
}

TEST(TraceIoDeath, GarbageFileIsFatal)
{
    setLogQuiet(true);
    const std::string path = "/tmp/asap_trace_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace at all, sorry", f);
    std::fclose(f);
    EXPECT_DEATH(loadTrace(path), "not an ASAP trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace asap
