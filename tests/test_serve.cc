/**
 * @file
 * Tests for the streaming request-serving subsystem (src/serve/):
 * stream purity and stream-vs-materialized byte-identity, fixed-seed
 * determinism across engine workers and --par-domains, Zipfian
 * frequency sanity, log-histogram percentile accuracy, the
 * constant-memory buffer bound and the materialization guardrail, and
 * the daemon wire codec for serve jobs and per-MC media lists.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/cache.hh"
#include "exp/engine.hh"
#include "harness/runner.hh"
#include "harness/system.hh"
#include "serve/op_stream.hh"
#include "serve/scenario.hh"
#include "serve/zipf.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "svc/wire.hh"

namespace asap
{
namespace
{

WorkloadParams
serveParams(unsigned requests = 60)
{
    WorkloadParams p;
    p.opsPerThread = requests; // requests per thread, not raw ops
    p.keySpace = 512;
    p.seed = 11;
    return p;
}

bool
sameOp(const TraceOp &a, const TraceOp &b)
{
    return a.type == b.type && a.isPm == b.isPm &&
           a.cycles == b.cycles && a.addr == b.addr &&
           a.value == b.value && a.srcThread == b.srcThread &&
           a.srcRelease == b.srcRelease;
}

} // namespace

// The stream must be a pure function of (scenario, threads, params):
// draining thread-by-thread and draining round-robin must hand every
// thread the exact same op sequence.
TEST(ServeStream, PureAcrossPullOrders)
{
    const ServeScenario &sc = findServeScenario("serve:tenant-mix");
    const WorkloadParams p = serveParams();
    const unsigned threads = 6;

    ServeStream major(sc, threads, p);
    const TraceSet byThread = materializeStream(major);

    ServeStream rr(sc, threads, p);
    TraceSet byRoundRobin(threads);
    std::vector<bool> done(threads, false);
    unsigned live = threads;
    while (live) {
        for (unsigned t = 0; t < threads; ++t) {
            if (done[t])
                continue;
            const TraceOp op = rr.next(t);
            byRoundRobin.threads[t].push_back(op);
            if (op.type == OpType::End) {
                done[t] = true;
                --live;
            }
        }
    }

    ASSERT_EQ(byThread.threads.size(), byRoundRobin.threads.size());
    for (unsigned t = 0; t < threads; ++t) {
        ASSERT_EQ(byThread.threads[t].size(),
                  byRoundRobin.threads[t].size())
            << "thread " << t;
        for (std::size_t i = 0; i < byThread.threads[t].size(); ++i) {
            ASSERT_TRUE(sameOp(byThread.threads[t][i],
                               byRoundRobin.threads[t][i]))
                << "thread " << t << " op " << i;
        }
    }
}

// Simulating through the streaming path and through a materialized
// copy of the same stream must be byte-identical — runTicks, every
// counter, every histogram. This is the compatibility contract that
// keeps record/replay and crash experiments on the materialized path.
TEST(ServeStream, StreamAndMaterializedSimulateIdentically)
{
    const ServeScenario &sc = findServeScenario("serve:kv-zipf");
    const WorkloadParams p = serveParams(40);
    SimConfig cfg;
    cfg.numCores = 4;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;

    ServeStream streamed(sc, cfg.numCores, p);
    System live(cfg);
    live.loadStream(streamed);
    ASSERT_TRUE(live.run());

    ServeStream source(sc, cfg.numCores, p);
    System replay(cfg);
    replay.loadTrace(materializeStream(source));
    ASSERT_TRUE(replay.run());

    EXPECT_EQ(live.runTicks(), replay.runTicks());
    EXPECT_EQ(live.stats().dump(), replay.stats().dump());
}

// One serve job per scenario, executed with 1 worker and with 8, each
// against its own cold cache: every result field must match.
TEST(ServeStream, DeterministicAcrossEngineWorkers)
{
    std::vector<ExperimentJob> jobs;
    for (const ServeScenario &sc : allServeScenarios()) {
        ExperimentJob j;
        j.workload = sc.workloadName();
        j.cfg.numCores = 4;
        j.params = serveParams(30);
        jobs.push_back(j);
    }

    ResultCache cold1, cold8;
    RunOptions opt1, opt8;
    opt1.jobs = 1;
    opt1.cache = &cold1;
    opt8.jobs = 8;
    opt8.cache = &cold8;
    const SweepResult a = runJobs(jobs, opt1);
    const SweepResult b = runJobs(jobs, opt8);

    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].runTicks, b.results[i].runTicks);
        EXPECT_EQ(a.results[i].pmWrites, b.results[i].pmWrites);
        EXPECT_EQ(a.results[i].persistSamples,
                  b.results[i].persistSamples);
        EXPECT_EQ(a.results[i].persistP99, b.results[i].persistP99);
        EXPECT_EQ(a.results[i].persistP999, b.results[i].persistP999);
        EXPECT_EQ(a.results[i].serveRequests,
                  b.results[i].serveRequests);
    }
}

// The domain-parallel event kernel must replay a serve stream
// bit-identically to the sequential kernel, tail histogram included.
TEST(ServeStream, ParDomainsBitIdentical)
{
    const WorkloadParams p = serveParams(40);
    SimConfig seq;
    seq.numCores = 4;
    SimConfig par = seq;
    par.parDomains = 4;

    const RunResult a = runExperiment("serve:kv-bursty", seq, p);
    const RunResult b = runExperiment("serve:kv-bursty", par, p);
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.persistSamples, b.persistSamples);
    EXPECT_EQ(a.persistP50, b.persistP50);
    EXPECT_EQ(a.persistP99, b.persistP99);
    EXPECT_EQ(a.persistP999, b.persistP999);
    EXPECT_EQ(a.persistMax, b.persistMax);
    EXPECT_EQ(a.serveRequests, b.serveRequests);
}

// Two independently seeded runs of the same scenario must produce the
// same requests; a different seed must not.
TEST(ServeStream, SeedSelectsTheStream)
{
    const ServeScenario &sc = findServeScenario("serve:kv-zipf");
    WorkloadParams p = serveParams(25);

    ServeStream s1(sc, 2, p);
    ServeStream s2(sc, 2, p);
    const TraceSet a = materializeStream(s1);
    const TraceSet b = materializeStream(s2);
    ASSERT_EQ(a.totalOps(), b.totalOps());

    p.seed = 12;
    ServeStream s3(sc, 2, p);
    const TraceSet c = materializeStream(s3);
    bool differs = a.totalOps() != c.totalOps();
    for (unsigned t = 0; !differs && t < 2; ++t) {
        for (std::size_t i = 0;
             !differs && i < std::min(a.threads[t].size(),
                                      c.threads[t].size());
             ++i) {
            differs = !sameOp(a.threads[t][i], c.threads[t][i]);
        }
    }
    EXPECT_TRUE(differs);
}

// theta=0.99 must concentrate mass on low ranks: rank 0 clearly beats
// a deep-tail rank, and the draw histogram must be far from uniform.
TEST(Zipf, FrequencySanity)
{
    const std::uint64_t items = 1000;
    ZipfSampler zipf(items, 0.99);
    Rng rng(42);

    std::vector<std::uint64_t> hits(items, 0);
    const unsigned draws = 200000;
    for (unsigned i = 0; i < draws; ++i)
        ++hits[zipf.nextRank(rng)];

    EXPECT_EQ(std::max_element(hits.begin(), hits.end()) -
                  hits.begin(),
              0);
    // Rank 0 draws P ~ 1/zeta(1000, 0.99) ~ 13%; uniform would be
    // 0.1%. Anything above 5% is unambiguously Zipfian.
    EXPECT_GT(hits[0], draws / 20);
    EXPECT_GT(hits[0], 20 * hits[900]);

    // The key scrambler must spread the hot ranks across the
    // keyspace, not cluster them at low indices.
    std::vector<std::uint64_t> keyHits(items, 0);
    for (unsigned i = 0; i < 20000; ++i)
        ++keyHits[zipf.nextKeyIndex(rng)];
    std::uint64_t lowHalf = 0, total = 0;
    for (std::uint64_t k = 0; k < items; ++k) {
        total += keyHits[k];
        if (k < items / 2)
            lowHalf += keyHits[k];
    }
    EXPECT_GT(lowHalf, total / 4);
    EXPECT_LT(lowHalf, 3 * total / 4);
}

// percentile() returns the lower bound of the covering bucket: never
// above the exact order statistic, within one sub-bucket (6.25%) of
// it, and exact for max when the bucket width allows.
TEST(LogHistogram, PercentileMatchesBruteForce)
{
    LogHistogram h;
    std::vector<std::uint64_t> samples;
    Rng rng(7);
    for (unsigned i = 0; i < 20000; ++i) {
        // Log-uniform-ish spread over [1, 2^30).
        const std::uint64_t v =
            (std::uint64_t(1) << rng.below(30)) + rng.below(1u << 20);
        samples.push_back(v);
        h.sample(v);
    }
    std::sort(samples.begin(), samples.end());

    for (double pct : {50.0, 90.0, 99.0, 99.9}) {
        const std::size_t idx = std::min(
            samples.size() - 1,
            static_cast<std::size_t>(pct / 100.0 *
                                     double(samples.size())));
        const std::uint64_t exact = samples[idx];
        const std::uint64_t est = h.percentile(pct);
        EXPECT_LE(est, exact) << "pct " << pct;
        EXPECT_GE(double(est), 0.9375 * double(exact) - 1.0)
            << "pct " << pct;
    }
    EXPECT_EQ(h.max(), samples.back());
    EXPECT_EQ(h.count(), samples.size());
}

// The per-thread ring is the constant-memory witness: its high-water
// mark must be bounded by the chunk size plus one request, however
// many requests the run asks for.
TEST(ServeStream, BufferBoundIndependentOfRunLength)
{
    const ServeScenario &sc = findServeScenario("serve:tenant-mix");
    for (unsigned requests : {50u, 2000u}) {
        WorkloadParams p = serveParams(requests);
        ServeStream s(sc, 3, p);
        const TraceSet ts = materializeStream(s);
        EXPECT_GT(ts.totalOps(), requests); // generated something real
        EXPECT_LT(s.peakBufferedOps(), 1024u) << requests;
    }
}

// Materializing past the op cap must die loudly and point at the
// streaming alternative instead of exhausting memory.
TEST(ServeStreamDeathTest, MaterializeGuardrailFiresAtCap)
{
    const ServeScenario &sc = findServeScenario("serve:kv-zipf");
    const WorkloadParams p = serveParams(1000);
    EXPECT_DEATH(
        {
            ServeStream s(sc, 4, p);
            materializeStream(s, 500);
        },
        "op cap");
}

// The daemon wire codec must round-trip serve jobs and heterogeneous
// per-MC media lists, and reject unknown scenarios/profiles at the
// wire instead of letting a worker fatal() on them.
TEST(ServeWire, ServeJobsAndMediaPerMcRoundTrip)
{
    ExperimentJob job;
    job.workload = "serve:tenant-mix";
    job.cfg.numCores = 16;
    job.cfg.numMCs = 4;
    job.cfg.mediaPerMc = "paper-table2,cxl-dram";
    job.params = serveParams(100);

    const Json v = jobToJson(job);
    Json parsed;
    ASSERT_TRUE(Json::parse(v.dump(), parsed));
    ExperimentJob back;
    std::string why;
    ASSERT_TRUE(jobFromJson(parsed, back, &why)) << why;
    EXPECT_EQ(back.workload, job.workload);
    EXPECT_EQ(back.cfg.mediaPerMc, job.cfg.mediaPerMc);
    EXPECT_EQ(jobKey(back), jobKey(job));

    Json bad = jobToJson(job);
    bad.set("workload", Json::str("serve:no-such-scenario"));
    EXPECT_FALSE(jobFromJson(bad, back, &why));
    EXPECT_NE(why.find("scenario"), std::string::npos);

    bad = jobToJson(job);
    Json cfg = bad.get("cfg");
    cfg.set("mediaPerMc", Json::str("paper-table2,unobtainium"));
    bad.set("cfg", cfg);
    EXPECT_FALSE(jobFromJson(bad, back, &why));

    bad = jobToJson(job);
    cfg = bad.get("cfg");
    cfg.set("mediaPerMc", Json::str("paper-table2,"));
    bad.set("cfg", cfg);
    EXPECT_FALSE(jobFromJson(bad, back, &why));
}

} // namespace asap
