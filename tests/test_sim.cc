/**
 * @file
 * Unit tests for the simulation kernel: event queue, RNG, stats,
 * configuration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace asap
{
namespace
{

// ----------------------------------------------------------------- ticks

TEST(Ticks, NsConversionRoundsUp)
{
    EXPECT_EQ(nsToTicks(1), 2u);     // 2 GHz
    EXPECT_EQ(nsToTicks(60), 120u);  // persist-buffer flush
    EXPECT_EQ(nsToTicks(175), 350u); // PM read
    EXPECT_EQ(nsToTicks(90), 180u);  // PM write
    EXPECT_EQ(nsToTicks(0.6), 2u);   // rounds up
}

TEST(Ticks, RoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToNs(350), 175.0);
    EXPECT_DOUBLE_EQ(ticksToNs(0), 0.0);
}

// ----------------------------------------------------------- event queue

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        if (++fired < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, LimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(100, [&]() { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.clear();
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "past");
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 10; ++i)
        differed = differed || (a.next() != b.next());
    EXPECT_TRUE(differed);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng r(99);
    std::uint64_t first = r.next();
    r.next();
    r.reseed(99);
    EXPECT_EQ(r.next(), first);
}

// ----------------------------------------------------------------- stats

TEST(Stats, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.get("nothing"), 0u);
    s.inc("x");
    s.inc("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
}

TEST(Stats, MaxToKeepsMaximum)
{
    StatSet s;
    s.maxTo("m", 5);
    s.maxTo("m", 3);
    EXPECT_EQ(s.get("m"), 5u);
    s.maxTo("m", 9);
    EXPECT_EQ(s.get("m"), 9u);
}

TEST(Stats, DistributionMeanMax)
{
    Distribution d(100);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_EQ(d.max(), 30u);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Stats, DistributionWeighted)
{
    Distribution d(100);
    d.sample(10, 3);
    d.sample(50, 1);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_EQ(d.count(), 4u);
}

TEST(Stats, DistributionPercentile)
{
    Distribution d(100);
    for (std::uint64_t v = 1; v <= 100; ++v)
        d.sample(v);
    EXPECT_EQ(d.percentile(50.0), 50u);
    EXPECT_EQ(d.percentile(99.0), 99u);
    EXPECT_EQ(d.percentile(100.0), 100u);
}

TEST(Stats, DistributionClampsOversizedSamples)
{
    Distribution d(10);
    d.sample(1000);
    EXPECT_EQ(d.percentile(99.0), 10u);
    EXPECT_EQ(d.max(), 1000u); // max tracks the true value
}

TEST(Stats, DistributionEmpty)
{
    Distribution d(10);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.percentile(99.0), 0u);
}

TEST(Stats, DumpContainsEntries)
{
    StatSet s;
    s.inc("alpha", 7);
    s.dist("occ", 32).sample(3);
    const std::string text = s.dump();
    EXPECT_NE(text.find("alpha 7"), std::string::npos);
    EXPECT_NE(text.find("occ::mean"), std::string::npos);
}

TEST(Stats, ResetClears)
{
    StatSet s;
    s.inc("a");
    s.dist("d").sample(1);
    s.reset();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_FALSE(s.hasDist("d"));
}

// ---------------------------------------------------------------- config

TEST(Config, DefaultsMatchTableII)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.numCores, 4u);
    EXPECT_EQ(cfg.numMCs, 2u);
    EXPECT_EQ(cfg.pbEntries, 32u);
    EXPECT_EQ(cfg.etEntries, 32u);
    EXPECT_EQ(cfg.rtEntries, 32u);
    EXPECT_EQ(cfg.wpqEntries, 16u);
    EXPECT_EQ(cfg.pmReadLatency, nsToTicks(175));
    EXPECT_EQ(cfg.pmWriteLatency, nsToTicks(90));
    EXPECT_EQ(cfg.pbFlushLatency, nsToTicks(60));
    EXPECT_EQ(cfg.hopsPollPeriod, 500u);
    EXPECT_EQ(cfg.hopsPollCost, 50u);
}

TEST(Config, OverrideParsesKeys)
{
    SimConfig cfg;
    cfg.override("numCores=8");
    cfg.override("model=hops");
    cfg.override("persistency=ep");
    cfg.override("rtEntries=64");
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.model, ModelKind::Hops);
    EXPECT_EQ(cfg.persistency, PersistencyModel::Epoch);
    EXPECT_EQ(cfg.rtEntries, 64u);
}

TEST(ConfigDeath, UnknownKeyIsFatal)
{
    SimConfig cfg;
    EXPECT_DEATH(cfg.override("bogusKey=1"), "unknown config key");
}

TEST(ConfigDeath, MissingEqualsIsFatal)
{
    SimConfig cfg;
    EXPECT_DEATH(cfg.override("numCores"), "key=value");
}

TEST(Config, ModelNames)
{
    EXPECT_EQ(parseModelKind("baseline"), ModelKind::Baseline);
    EXPECT_EQ(parseModelKind("bbb"), ModelKind::Eadr);
    EXPECT_EQ(parseModelKind("ideal"), ModelKind::Eadr);
    EXPECT_EQ(toString(ModelKind::Asap), "asap");
    EXPECT_EQ(toString(PersistencyModel::Epoch), "ep");
}

} // namespace
} // namespace asap
