/**
 * @file
 * Tests for the crash-state permuter: the enumerator core (atom
 * derivation, state masks, sampling bounds), the Permute job kind
 * through the engine (dispatch, cache entries, wire codec, emitters),
 * coverage reporting, and the fault hook that proves the checker
 * rejects states a broken recovery policy reaches.
 */

#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "exp/cache.hh"
#include "exp/crash_campaign.hh"
#include "exp/emit.hh"
#include "exp/engine.hh"
#include "permute/permute.hh"
#include "recovery/checker.hh"
#include "sim/log.hh"
#include "svc/wire.hh"

namespace asap
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.opsPerThread = 20;
    p.seed = 7;
    return p;
}

void
expectSamePermuteVerdict(const CrashVerdict &a, const CrashVerdict &b)
{
    EXPECT_EQ(a.consistent, b.consistent);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.crashTick, b.crashTick);
    EXPECT_EQ(a.committedUpTo, b.committedUpTo);
    EXPECT_EQ(a.statesChecked, b.statesChecked);
    EXPECT_EQ(a.statesReachable, b.statesReachable);
    EXPECT_EQ(a.distinctStates, b.distinctStates);
    EXPECT_EQ(a.permuteAtoms, b.permuteAtoms);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.inconsistentStates, b.inconsistentStates);
    EXPECT_EQ(a.firstBadState, b.firstBadState);
}

// ------------------------------------------------- enumerator units

TEST(PermuteCore, MaskHexRoundTrip)
{
    for (std::uint64_t m : {0ull, 1ull, 0x2aull, 0xdeadbeefull,
                            ~0ull}) {
        std::uint64_t back = 1;
        ASSERT_TRUE(permute::maskFromHex(permute::maskToHex(m), back));
        EXPECT_EQ(back, m);
    }
    std::uint64_t out;
    EXPECT_FALSE(permute::maskFromHex("", out));
    EXPECT_FALSE(permute::maskFromHex("xyz", out));
    EXPECT_FALSE(permute::maskFromHex("12345678901234567", out));
}

TEST(PermuteCore, FaultModeParse)
{
    permute::FaultMode fm;
    EXPECT_TRUE(permute::parsePermuteFault("", fm));
    EXPECT_EQ(fm, permute::FaultMode::None);
    EXPECT_TRUE(permute::parsePermuteFault("none", fm));
    EXPECT_EQ(fm, permute::FaultMode::None);
    EXPECT_TRUE(permute::parsePermuteFault("drop-undo", fm));
    EXPECT_EQ(fm, permute::FaultMode::DropUndo);
    EXPECT_FALSE(permute::parsePermuteFault("bogus", fm));
}

/** Two controllers, two in-flight epochs, records spread over both. */
permute::PermuteSnapshot
syntheticSnapshot()
{
    permute::PermuteSnapshot snap;
    snap.inFlight = {{0, 5}, {1, 9}};

    permute::McSnapshot m0;
    m0.mc = 0;
    m0.undos = {{100, 11, 0, 5}, {101, 12, 1, 9}};
    m0.delays = {{100, 13, 0, 5}};
    permute::McSnapshot m1;
    m1.mc = 1;
    m1.undos = {{200, 21, 0, 5}};
    snap.mcs = {m0, m1};

    snap.durableAtCrash = {{100, 91}, {101, 92}, {200, 93}};
    return snap;
}

TEST(PermuteCore, DeriveAtomsIsSortedAndDeterministic)
{
    const permute::PermuteSnapshot snap = syntheticSnapshot();
    const std::vector<permute::Atom> a =
        deriveAtoms(snap, permute::FaultMode::None);
    // (mc0, t0e5), (mc0, t1e9), (mc1, t0e5) — mc-major, thread next.
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0].mc, 0u);
    EXPECT_EQ(a[0].thread, 0);
    EXPECT_EQ(a[1].mc, 0u);
    EXPECT_EQ(a[1].thread, 1);
    EXPECT_EQ(a[2].mc, 1u);
    EXPECT_EQ(a[2].thread, 0);
    for (const permute::Atom &atom : a)
        EXPECT_EQ(atom.kind, permute::Atom::Kind::CommitApply);

    // The fault mode appends one droppable atom per undo record,
    // after every CommitApply (kind-major order).
    const std::vector<permute::Atom> f =
        deriveAtoms(snap, permute::FaultMode::DropUndo);
    ASSERT_EQ(f.size(), 6u);
    EXPECT_EQ(f[3].kind, permute::Atom::Kind::DropUndo);
    EXPECT_EQ(f[3].line, 100u);
    EXPECT_EQ(f[4].line, 101u);
    EXPECT_EQ(f[5].line, 200u);

    // Same snapshot, same bit positions — the repro contract.
    const std::vector<permute::Atom> g =
        deriveAtoms(snap, permute::FaultMode::DropUndo);
    ASSERT_EQ(g.size(), f.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
        EXPECT_EQ(g[i].kind, f[i].kind);
        EXPECT_EQ(g[i].mc, f[i].mc);
        EXPECT_EQ(g[i].thread, f[i].thread);
        EXPECT_EQ(g[i].epoch, f[i].epoch);
        EXPECT_EQ(g[i].line, f[i].line);
    }
}

TEST(PermuteCore, ExhaustiveBelowBoundSampledAbove)
{
    setLogQuiet(true);
    const permute::PermuteSnapshot snap = syntheticSnapshot();
    // Empty log: every enumerated image is trivially consistent (the
    // checker only judges logged lines), which isolates the
    // enumeration accounting from checker semantics here.
    RunLog log;
    NvmContents nvm;
    const std::vector<std::uint64_t> committed = {0, 0};

    permute::PermuteOptions opt;
    opt.bound = 64;
    permute::PermuteReport rep =
        permuteAndCheck(snap, opt, nvm, log, committed);
    EXPECT_EQ(rep.atoms, 3u);
    EXPECT_EQ(rep.statesReachable, 8u);
    EXPECT_EQ(rep.statesChecked, 8u);
    EXPECT_FALSE(rep.truncated);
    EXPECT_EQ(rep.inconsistentStates, 0u);
    EXPECT_EQ(rep.orderCollisions, 0u);
    EXPECT_GE(rep.distinctStates, 1u);
    EXPECT_LE(rep.distinctStates, rep.statesChecked);

    // Above the bound: sampled, loudly flagged, deterministic.
    opt.bound = 4;
    const permute::PermuteReport s1 =
        permuteAndCheck(snap, opt, nvm, log, committed);
    EXPECT_TRUE(s1.truncated);
    EXPECT_EQ(s1.statesChecked, 4u);
    const permute::PermuteReport s2 =
        permuteAndCheck(snap, opt, nvm, log, committed);
    EXPECT_EQ(s1.statesChecked, s2.statesChecked);
    EXPECT_EQ(s1.distinctStates, s2.distinctStates);

    // Single-state mode (--repro --state).
    opt = permute::PermuteOptions{};
    opt.haveOnlyMask = true;
    opt.onlyMask = 5;
    const permute::PermuteReport one =
        permuteAndCheck(snap, opt, nvm, log, committed);
    EXPECT_EQ(one.statesChecked, 1u);

    // The mutate-check-revert contract: nvm is back to canonical.
    EXPECT_EQ(nvm.read(100), 0u);
    EXPECT_EQ(nvm.read(101), 0u);
    EXPECT_EQ(nvm.read(200), 0u);
}

TEST(PermuteCore, GrayCodeCoversSpaceWithSingleBitSteps)
{
    // Consecutive reflected Gray codes differ in exactly one bit, and
    // the sequence is a permutation of the full space — the two
    // properties the incremental engine's O(1) state steps rest on.
    constexpr unsigned kBits = 12;
    constexpr std::uint64_t kCount = 1ULL << kBits;
    std::vector<bool> seen(kCount, false);
    EXPECT_EQ(permute::grayCode(0), 0u);
    std::uint64_t prev = permute::grayCode(0);
    seen[prev] = true;
    for (std::uint64_t i = 1; i < kCount; ++i) {
        const std::uint64_t g = permute::grayCode(i);
        ASSERT_LT(g, kCount);
        ASSERT_FALSE(seen[g]) << "grayCode repeats at i=" << i;
        seen[g] = true;
        EXPECT_TRUE(std::has_single_bit(prev ^ g))
            << "step " << i << " flips more than one bit";
        prev = g;
    }
}

TEST(PermuteCore, EngineParse)
{
    permute::Engine e = permute::Engine::Naive;
    EXPECT_TRUE(permute::parsePermuteEngine("", e));
    EXPECT_EQ(e, permute::Engine::Incremental);
    EXPECT_TRUE(permute::parsePermuteEngine("naive", e));
    EXPECT_EQ(e, permute::Engine::Naive);
    EXPECT_TRUE(permute::parsePermuteEngine("incremental", e));
    EXPECT_EQ(e, permute::Engine::Incremental);
    EXPECT_FALSE(permute::parsePermuteEngine("bogus", e));
    EXPECT_EQ(permute::toString(permute::Engine::Naive), "naive");
    EXPECT_EQ(permute::toString(permute::Engine::Incremental),
              "incremental");
}

// ---------------------------------------------------- engine parity

/**
 * Naive, incremental and parallel (8 workers) engines must agree on
 * every reported number — checked/reachable/distinct/inconsistent
 * counts, truncation, first-bad state and message — across all four
 * models, several crash ticks and both fault modes.
 */
void
expectEngineParity(const std::string &fault)
{
    setLogQuiet(true);
    const ModelPair models[] = {
        {ModelKind::Baseline, PersistencyModel::Epoch},
        {ModelKind::Hops, PersistencyModel::Epoch},
        {ModelKind::Eadr, PersistencyModel::Epoch},
        {ModelKind::Asap, PersistencyModel::Release},
    };
    WorkloadParams params = tinyParams();
    params.opsPerThread = 60;
    for (const ModelPair &m : models) {
        SimConfig cfg;
        cfg.model = m.first;
        cfg.persistency = m.second;
        cfg.numCores = 4;
        for (Tick t : {8000u, 24000u, 40000u}) {
            PermuteSpec naive;
            naive.engine = "naive";
            naive.fault = fault;
            PermuteSpec inc;
            inc.engine = "incremental";
            inc.fault = fault;
            PermuteSpec par;
            par.engine = "incremental";
            par.threads = 8;
            par.fault = fault;

            const CrashRunResult a = runPermuteExperiment(
                "queue", cfg, params, t, naive);
            const CrashRunResult b = runPermuteExperiment(
                "queue", cfg, params, t, inc);
            const CrashRunResult c = runPermuteExperiment(
                "queue", cfg, params, t, par);
            SCOPED_TRACE(toString(m.first) + "/" + toString(m.second) +
                         " @ " + std::to_string(t) +
                         (fault.empty() ? "" : " fault=" + fault));
            expectSamePermuteVerdict(a.verdict, b.verdict);
            expectSamePermuteVerdict(a.verdict, c.verdict);
        }
    }
}

TEST(PermuteEngines, CrashAndPermuteShareOneCheckerIndex)
{
    setLogQuiet(true);
    // A Crash job and a Permute job probing the same tick hold
    // identical logs, so the content-keyed memo must serve both from
    // one CheckerIndex build.
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;
    cfg.numCores = 4;
    clearCheckerIndexCache();
    PermuteSpec spec;
    (void)runPermuteExperiment("queue", cfg, tinyParams(), 20000, spec);
    (void)runCrashExperiment("queue", cfg, tinyParams(), 20000);
    const CheckerIndexStats stats = checkerIndexStats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_GE(stats.hits, 1u);
    clearCheckerIndexCache();
}

TEST(PermuteEngines, ParityAcrossModels)
{
    expectEngineParity("");
}

TEST(PermuteEngines, ParityAcrossModelsWithDropUndoFault)
{
    expectEngineParity("drop-undo");
}

// ----------------------------------------- job plumbing (cache, wire)

TEST(PermuteJobs, KeyDependsOnEveryPermuteKnob)
{
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;
    set.addCrash("queue", cfg, tinyParams(), 5000);
    set.addPermute("queue", cfg, tinyParams(), 5000, 4096, 1);
    const std::string crashKey = jobKey(set.jobs()[0]);
    const std::string permKey = jobKey(set.jobs()[1]);
    EXPECT_NE(crashKey, permKey);

    // Crash keys must not mention the permute knobs (legacy cache
    // entries stay addressable).
    EXPECT_EQ(describeJob(set.jobs()[0]).find("permute"),
              std::string::npos);

    ExperimentJob j = set.jobs()[1];
    j.permuteBound = 128;
    EXPECT_NE(jobKey(j), permKey);
    j = set.jobs()[1];
    j.permuteSeed = 2;
    EXPECT_NE(jobKey(j), permKey);
    j = set.jobs()[1];
    j.permuteFault = "drop-undo";
    EXPECT_NE(jobKey(j), permKey);
    j = set.jobs()[1];
    j.permuteState = "2a";
    EXPECT_NE(jobKey(j), permKey);
}

TEST(PermuteJobs, EntrySerializationRoundTripsCoverage)
{
    CachedResult e;
    e.kind = JobKind::Permute;
    e.run.workload = "queue";
    e.run.model = ModelKind::Asap;
    e.run.persistency = PersistencyModel::Release;
    e.verdict.consistent = false;
    e.verdict.message = "state 2a: epoch (t1,e3) lost a write";
    e.verdict.crashTick = 777;
    e.verdict.actualTick = 777;
    e.verdict.committedUpTo = {4, 2};
    e.verdict.statesChecked = 96;
    e.verdict.statesReachable = 128;
    e.verdict.distinctStates = 60;
    e.verdict.permuteAtoms = 7;
    e.verdict.truncated = true;
    e.verdict.inconsistentStates = 3;
    e.verdict.firstBadState = "2a";

    CachedResult back;
    ASSERT_TRUE(deserializeEntry(serializeEntry(e), back));
    EXPECT_EQ(back.kind, JobKind::Permute);
    expectSamePermuteVerdict(e.verdict, back.verdict);
}

TEST(PermuteJobs, WireCodecRoundTripsPermuteJobs)
{
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;
    set.addPermute("queue", cfg, tinyParams(), 31337, 512, 9,
                   "drop-undo", "1f");
    const ExperimentJob &job = set.jobs()[0];

    ExperimentJob back;
    std::string why;
    ASSERT_TRUE(jobFromJson(jobToJson(job), back, &why)) << why;
    EXPECT_EQ(back.kind, JobKind::Permute);
    EXPECT_EQ(back.permuteBound, 512u);
    EXPECT_EQ(back.permuteSeed, 9u);
    EXPECT_EQ(back.permuteFault, "drop-undo");
    EXPECT_EQ(back.permuteState, "1f");
    // Bit-identical addressing across the wire: same cache key.
    EXPECT_EQ(jobKey(back), jobKey(job));

    // Bad knobs are rejected with a reason, not accepted silently.
    Json bad = jobToJson(job);
    bad.set("permuteFault", Json::str("explode"));
    EXPECT_FALSE(jobFromJson(bad, back, &why));
    bad = jobToJson(job);
    bad.set("permuteState", Json::str("not-hex"));
    EXPECT_FALSE(jobFromJson(bad, back, &why));
}

// --------------------------------------------- end-to-end experiments

TEST(PermuteJobs, EngineDispatchMatchesDirectCall)
{
    setLogQuiet(true);
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;
    cfg.numCores = 4;
    set.addPermute("queue", cfg, tinyParams(), 20000, 4096, 1);

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);
    ASSERT_EQ(sr.jobs.size(), 1u);
    EXPECT_TRUE(sr.hasPermuteJobs());
    EXPECT_FALSE(sr.hasCrashJobs());

    PermuteSpec spec;
    const CrashRunResult direct = runPermuteExperiment(
        "queue", sr.jobs[0].cfg, sr.jobs[0].params, 20000, spec);
    expectSamePermuteVerdict(direct.verdict, sr.verdicts[0]);
    EXPECT_TRUE(sr.verdicts[0].consistent) << sr.verdicts[0].message;
    EXPECT_EQ(sr.verdicts[0].statesChecked,
              sr.verdicts[0].statesReachable);
    EXPECT_FALSE(sr.verdicts[0].truncated);
}

TEST(PermuteJobs, AllModelsExhaustiveAndConsistent)
{
    setLogQuiet(true);
    // The acceptance sweep: every model, several crash points, full
    // coverage (the exhaustive bound is generous for 20-op runs) and
    // zero inconsistent states.
    const ModelPair models[] = {
        {ModelKind::Baseline, PersistencyModel::Epoch},
        {ModelKind::Hops, PersistencyModel::Epoch},
        {ModelKind::Eadr, PersistencyModel::Epoch},
        {ModelKind::Asap, PersistencyModel::Release},
    };
    for (const ModelPair &m : models) {
        SimConfig cfg;
        cfg.model = m.first;
        cfg.persistency = m.second;
        cfg.numCores = 4;
        for (Tick t : {4000u, 12000u, 20000u}) {
            PermuteSpec spec;
            const CrashRunResult r = runPermuteExperiment(
                "queue", cfg, tinyParams(), t, spec);
            EXPECT_TRUE(r.verdict.consistent)
                << toString(m.first) << "/" << toString(m.second)
                << " @ " << t << ": " << r.verdict.message;
            EXPECT_EQ(r.verdict.statesChecked,
                      r.verdict.statesReachable);
            EXPECT_FALSE(r.verdict.truncated);
            EXPECT_GE(r.verdict.statesChecked, 1u);
        }
    }
}

TEST(PermuteJobs, CampaignWorkerCountInvariant)
{
    setLogQuiet(true);
    CampaignSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = tinyParams();
    spec.ticksPerConfig = 10;
    spec.sweepKind = JobKind::Permute;

    ResultCache serialCache, parallelCache;
    RunOptions serial;
    serial.jobs = 1;
    serial.cache = &serialCache;
    RunOptions parallel;
    parallel.jobs = 8;
    parallel.cache = &parallelCache;

    const CampaignResult s = runCampaign(spec, serial);
    const CampaignResult p = runCampaign(spec, parallel);
    EXPECT_TRUE(s.allConsistent());
    ASSERT_EQ(s.crashPoints(), p.crashPoints());
    for (std::size_t i = 0; i < s.crashPoints(); ++i) {
        EXPECT_EQ(s.sweep.jobs[i].kind, JobKind::Permute);
        expectSamePermuteVerdict(s.sweep.verdicts[i],
                                 p.sweep.verdicts[i]);
    }
}

TEST(PermuteJobs, FaultHookFindsInconsistencyWithWorkingRepro)
{
    setLogQuiet(true);
    // A deliberately broken recovery policy (drop-undo fault) must
    // yield at least one inconsistent state across a tick sweep, and
    // the reported state mask must replay to the same verdict.
    CampaignSpec spec;
    spec.workloads = {"queue"};
    spec.models = {{ModelKind::Asap, PersistencyModel::Release}};
    spec.params = tinyParams();
    spec.params.opsPerThread = 60;
    spec.ticksPerConfig = 24;
    spec.sweepKind = JobKind::Permute;
    spec.permuteFault = "drop-undo";

    ResultCache cache;
    RunOptions opt;
    opt.jobs = 4;
    opt.cache = &cache;
    const CampaignResult cr = runCampaign(spec, opt);
    ASSERT_FALSE(cr.allConsistent())
        << "drop-undo fault never produced an inconsistent state; "
           "widen the tick sweep";

    const std::size_t bad = cr.badJobs.front();
    const CrashVerdict &v = cr.sweep.verdicts[bad];
    EXPECT_GT(v.inconsistentStates, 0u);
    ASSERT_FALSE(v.firstBadState.empty());

    // The one-line repro names the permute bench, the fault and the
    // state mask.
    const std::string line =
        reproCommand(cr.sweep.jobs[bad], v.firstBadState);
    EXPECT_NE(line.find("crash_permute"), std::string::npos);
    EXPECT_NE(line.find("--inject-fault drop-undo"),
              std::string::npos);
    EXPECT_NE(line.find("--state " + v.firstBadState),
              std::string::npos);

    // Replaying exactly that single state reproduces the violation.
    PermuteSpec rspec;
    rspec.fault = "drop-undo";
    rspec.onlyState = v.firstBadState;
    const CrashRunResult replay = runPermuteExperiment(
        cr.sweep.jobs[bad].workload, cr.sweep.jobs[bad].cfg,
        cr.sweep.jobs[bad].params, cr.sweep.jobs[bad].crashTick,
        rspec);
    EXPECT_FALSE(replay.verdict.consistent);
    EXPECT_EQ(replay.verdict.statesChecked, 1u);
    EXPECT_EQ(replay.verdict.message, v.message);

    // Without the fault the same crash points are all consistent:
    // the violations came from the injected fault, not the model.
    CampaignSpec clean = spec;
    clean.permuteFault.clear();
    ResultCache cleanCache;
    RunOptions cleanOpt;
    cleanOpt.jobs = 4;
    cleanOpt.cache = &cleanCache;
    EXPECT_TRUE(runCampaign(clean, cleanOpt).allConsistent());
}

TEST(PermuteJobs, EmittersCarryCoverageOnlyForPermuteSweeps)
{
    setLogQuiet(true);
    JobSet set;
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = PersistencyModel::Release;
    set.addPermute("queue", cfg, tinyParams(), 4000, 4096, 1);

    ResultCache cache;
    RunOptions opt;
    opt.cache = &cache;
    const SweepResult sr = runJobs(set.jobs(), opt);

    std::ostringstream json;
    emitJson(json, sr);
    EXPECT_NE(json.str().find("\"kind\": \"permute\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"statesChecked\": "),
              std::string::npos);
    EXPECT_NE(json.str().find("\"statesReachable\": "),
              std::string::npos);
    EXPECT_NE(json.str().find("\"truncated\": "), std::string::npos);

    std::ostringstream csv;
    emitCsv(csv, sr);
    EXPECT_NE(csv.str().find(",statesChecked,statesReachable,"),
              std::string::npos);

    // Legacy crash sweeps keep their schema: no coverage columns.
    JobSet crashSet;
    crashSet.addCrash("queue", cfg, tinyParams(), 4000);
    const SweepResult crashSr = runJobs(crashSet.jobs(), opt);
    std::ostringstream crashCsv;
    emitCsv(crashCsv, crashSr);
    EXPECT_EQ(crashCsv.str().find("statesChecked"), std::string::npos);
    std::ostringstream crashJson;
    emitJson(crashJson, crashSr);
    EXPECT_EQ(crashJson.str().find("statesChecked"),
              std::string::npos);
}

} // namespace
} // namespace asap
