/**
 * @file
 * Model-level tests: drive the four persistence models through their
 * PersistModel interface against real memory controllers and verify
 * the protocol semantics (eager vs conservative flushing, commit and
 * CDR flow, NACK fallback, fences, crash behaviour).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/asap_model.hh"
#include "core/recovery_table.hh"
#include "models/baseline_model.hh"
#include "models/eadr_model.hh"
#include "models/hops_model.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

struct ModelRig
{
    SimConfig cfg;
    EventQueue eq;
    NvmContents media;
    StatSet stats;
    AddressMap amap{2, 256};
    std::vector<std::unique_ptr<MemoryController>> mcOwners;
    std::vector<MemoryController *> mcs;
    std::vector<std::unique_ptr<RecoveryTable>> rts;
    std::unique_ptr<ModelContext> ctx;
    std::vector<std::unique_ptr<PersistModel>> owners;

    explicit ModelRig(ModelKind kind, unsigned threads = 2)
    {
        setLogQuiet(true);
        cfg.model = kind;
        for (unsigned i = 0; i < 2; ++i) {
            mcOwners.push_back(std::make_unique<MemoryController>(
                i, cfg, eq, media, stats));
            mcs.push_back(mcOwners.back().get());
        }
        if (kind == ModelKind::Asap) {
            for (unsigned i = 0; i < 2; ++i) {
                rts.push_back(std::make_unique<RecoveryTable>(
                    i, cfg.rtEntries, stats));
                mcs[i]->setPolicy(rts.back().get());
            }
        }
        ctx = std::make_unique<ModelContext>(
            ModelContext{cfg, eq, stats, amap, mcs, &media, nullptr,
                         {}});
        if (kind == ModelKind::Eadr) {
            ctx->eadrDirty = std::make_shared<
                std::unordered_map<std::uint64_t, std::uint64_t>>();
        }
        for (unsigned t = 0; t < threads; ++t) {
            switch (kind) {
              case ModelKind::Baseline:
                owners.push_back(
                    std::make_unique<BaselineModel>(t, *ctx));
                break;
              case ModelKind::Hops:
                owners.push_back(std::make_unique<HopsModel>(t, *ctx));
                break;
              case ModelKind::Asap:
                owners.push_back(std::make_unique<AsapModel>(t, *ctx));
                break;
              case ModelKind::Eadr:
                owners.push_back(std::make_unique<EadrModel>(t, *ctx));
                break;
            }
            ctx->peers.push_back(owners.back().get());
        }
    }

    PersistModel &model(unsigned t) { return *owners[t]; }
};

// ------------------------------------------------------------------ ASAP

TEST(AsapModelTest, StoreFlushesWithoutFence)
{
    ModelRig rig(ModelKind::Asap);
    rig.model(0).pmStore(1, 100, []() {});
    rig.eq.run();
    EXPECT_EQ(rig.media.read(1), 100u) << "eager flushing needs no fence";
}

TEST(AsapModelTest, OfenceDoesNotStall)
{
    ModelRig rig(ModelKind::Asap);
    bool done = false;
    rig.model(0).pmStore(1, 100, []() {});
    rig.model(0).ofence([&]() { done = true; });
    EXPECT_TRUE(done) << "ofence completes immediately";
}

TEST(AsapModelTest, DfenceWaitsForCommit)
{
    ModelRig rig(ModelKind::Asap);
    bool done = false;
    rig.model(0).pmStore(1, 100, []() {});
    rig.model(0).dfence([&]() { done = true; });
    EXPECT_FALSE(done);
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.model(0).lastCommittedEpoch(), 1u);
}

TEST(AsapModelTest, EagerFlushAcrossEpochsIsEarly)
{
    ModelRig rig(ModelKind::Asap);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    m.ofence([]() {});
    m.pmStore(2, 200, []() {});
    m.ofence([]() {});
    m.pmStore(3, 300, []() {});
    rig.eq.run();
    EXPECT_GT(rig.stats.get("pb.totSpecWrites"), 0u)
        << "later-epoch writes flush early";
    EXPECT_EQ(rig.media.read(1), 100u);
    EXPECT_EQ(rig.media.read(2), 200u);
    EXPECT_EQ(rig.media.read(3), 300u);
}

TEST(AsapModelTest, CrossDependencyCdrFlow)
{
    ModelRig rig(ModelKind::Asap);
    auto &src = rig.model(0);
    auto &dep = rig.model(1);

    src.pmStore(1, 100, []() {});
    const std::uint64_t src_epoch = src.currentEpoch();
    src.release([]() {});

    bool acquired = false;
    dep.acquire(0, src_epoch, [&]() { acquired = true; });
    EXPECT_TRUE(acquired);
    dep.pmStore(5, 500, []() {});
    bool dep_done = false;
    dep.dfence([&]() { dep_done = true; });
    rig.eq.run();
    EXPECT_TRUE(dep_done);
    EXPECT_GT(rig.stats.get("asap.cdrMessages"), 0u);
    EXPECT_GT(rig.stats.get("et.interTEpochConflict"), 0u);
}

TEST(AsapModelTest, NackTriggersConservativeFallback)
{
    ModelRig rig(ModelKind::Asap);
    rig.cfg.rtEntries = 2; // shrink before models? rts already built.
    // Rebuild a rig with tiny recovery tables instead.
    SimConfig small;
    small.model = ModelKind::Asap;
    small.rtEntries = 2;
    ModelRig rig2(ModelKind::Asap);
    // Replace policies with tiny tables.
    rig2.rts.clear();
    for (unsigned i = 0; i < 2; ++i) {
        rig2.rts.push_back(
            std::make_unique<RecoveryTable>(i, 2, rig2.stats));
        rig2.mcs[i]->setPolicy(rig2.rts.back().get());
    }
    auto &m = rig2.model(0);
    // Epoch 1 keeps a write pending so epochs 2.. stay unsafe, and a
    // stream of later-epoch writes overwhelms the 2-entry tables.
    for (int e = 0; e < 12; ++e) {
        m.pmStore(static_cast<std::uint64_t>(e * 2 + 1),
                  static_cast<std::uint64_t>(e), []() {});
        m.ofence([]() {});
    }
    bool done = false;
    m.dfence([&]() { done = true; });
    rig2.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(rig2.stats.get("rt.nacks"), 0u);
    EXPECT_GT(rig2.stats.get("asap.conservativeFallbacks"), 0u);
    // All writes still became durable despite the NACKs.
    for (int e = 0; e < 12; ++e) {
        EXPECT_EQ(rig2.media.read(
                      static_cast<std::uint64_t>(e * 2 + 1)),
                  static_cast<std::uint64_t>(e));
    }
}

TEST(AsapModelTest, CrashRewindsUncommittedSpeculation)
{
    ModelRig rig(ModelKind::Asap);
    auto &m = rig.model(0);
    // Epoch 1: a write we keep uncommitted by crashing right after
    // the speculative flush of epoch 2's write lands.
    m.pmStore(1, 100, []() {});
    m.ofence([]() {});
    m.pmStore(1, 200, []() {});
    // Run a short while: epoch 2's early flush may speculatively
    // reach memory.
    rig.eq.run(200);
    for (auto &o : rig.owners)
        o->crash();
    for (auto *mc : rig.mcs)
        mc->crash();
    // Whatever happened, line 1 must hold 0, 100 or 200 in a state
    // consistent with epoch order: if 200 survived, epoch 1 (same
    // line) must have been superseded — always true here. The key
    // check: memory is not left with a value that never existed.
    const std::uint64_t v = rig.media.read(1);
    EXPECT_TRUE(v == 0 || v == 100 || v == 200);
}

// ------------------------------------------------------------------ HOPS

TEST(HopsModelTest, ConservativeHoldsFutureEpochs)
{
    ModelRig rig(ModelKind::Hops);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    m.ofence([]() {});
    m.pmStore(2, 200, []() {});
    rig.eq.run();
    EXPECT_EQ(rig.stats.get("pb.totSpecWrites"), 0u)
        << "HOPS never flushes early";
    EXPECT_EQ(rig.media.read(2), 200u);
    EXPECT_GT(rig.stats.get("pb.cyclesBlocked"), 0u)
        << "epoch 2 waited for epoch 1";
}

TEST(HopsModelTest, DependencyResolvedByPolling)
{
    ModelRig rig(ModelKind::Hops);
    auto &src = rig.model(0);
    auto &dep = rig.model(1);
    src.pmStore(1, 100, []() {});
    const std::uint64_t e = src.currentEpoch();
    src.release([]() {});
    dep.acquire(0, e, []() {});
    dep.pmStore(5, 500, []() {});
    bool done = false;
    dep.dfence([&]() { done = true; });
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(rig.stats.get("hops.polls"), 0u);
}

TEST(HopsModelTest, PollingCadenceMatchesConfig)
{
    ModelRig rig(ModelKind::Hops);
    auto &src = rig.model(0);
    auto &dep = rig.model(1);
    // Source epoch with one slow write: dependency resolution takes
    // at least one full poll period.
    src.pmStore(1, 100, []() {});
    const std::uint64_t e = src.currentEpoch();
    src.release([]() {});
    dep.acquire(0, e, []() {});
    bool done = false;
    dep.dfence([&]() { done = true; });
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(rig.eq.now(), rig.cfg.hopsPollPeriod);
}

// -------------------------------------------------------------- baseline

TEST(BaselineModelTest, FenceStallsUntilAcked)
{
    ModelRig rig(ModelKind::Baseline);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    bool done = false;
    m.ofence([&]() { done = true; });
    EXPECT_FALSE(done) << "sfence stalls";
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.media.read(1), 100u);
    EXPECT_GT(rig.stats.get("core.sfenceStalled"), 0u);
}

TEST(BaselineModelTest, EmptyFenceIsFree)
{
    ModelRig rig(ModelKind::Baseline);
    bool done = false;
    rig.model(0).ofence([&]() { done = true; });
    EXPECT_TRUE(done);
}

TEST(BaselineModelTest, WriteSetCoalescesPerLine)
{
    ModelRig rig(ModelKind::Baseline);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    m.pmStore(1, 101, []() {});
    m.pmStore(2, 200, []() {});
    m.ofence([]() {});
    rig.eq.run();
    EXPECT_EQ(rig.stats.get("baseline.clwbs"), 2u)
        << "one clwb per dirty line";
    EXPECT_EQ(rig.media.read(1), 101u);
}

TEST(BaselineModelTest, UnflushedWritesDieInCrash)
{
    ModelRig rig(ModelKind::Baseline);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    // No fence: the write sits in the (volatile) cache.
    m.crash();
    for (auto *mc : rig.mcs)
        mc->crash();
    EXPECT_EQ(rig.media.read(1), 0u);
}

// ------------------------------------------------------------------ eADR

TEST(EadrModelTest, NothingStalls)
{
    ModelRig rig(ModelKind::Eadr);
    auto &m = rig.model(0);
    bool store_done = false, fence_done = false;
    m.pmStore(1, 100, [&]() { store_done = true; });
    m.ofence([&]() { fence_done = true; });
    EXPECT_TRUE(store_done);
    EXPECT_TRUE(fence_done);
}

TEST(EadrModelTest, CrashDrainsEverything)
{
    ModelRig rig(ModelKind::Eadr);
    auto &m = rig.model(0);
    m.pmStore(1, 100, []() {});
    m.pmStore(2, 200, []() {});
    m.crash(); // battery drain
    EXPECT_EQ(rig.media.read(1), 100u);
    EXPECT_EQ(rig.media.read(2), 200u);
    EXPECT_GT(rig.stats.get("eadr.batteryDrainWrites"), 0u);
}

TEST(EadrModelTest, BackgroundDrainReachesMedia)
{
    ModelRig rig(ModelKind::Eadr);
    rig.model(0).pmStore(1, 100, []() {});
    rig.eq.run();
    EXPECT_EQ(rig.media.read(1), 100u)
        << "writes drain to NVM in the background";
    EXPECT_GT(rig.stats.get("mc.pmWrites"), 0u);
}

} // namespace
} // namespace asap
