/**
 * @file
 * Integration and property tests across the whole system:
 *
 *  - crash fuzzing: every workload, ASAP and HOPS, EP and RP, random
 *    crash points — post-crash NVM state must satisfy the Section VI
 *    invariants (prefix closure, committed durability, no alien
 *    values);
 *  - liveness: every configuration runs to completion (Theorem 1's
 *    no-deadlock claim, executable);
 *  - performance-ordering properties from the evaluation (ASAP >=
 *    HOPS, eADR fastest, baseline slowest on fence-heavy code).
 */

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>

#include "harness/runner.hh"
#include "harness/system.hh"
#include "recovery/checker.hh"
#include "sim/log.hh"
#include "workloads/kv_util.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace asap
{
namespace
{

WorkloadParams
smallParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.opsPerThread = 30;
    p.seed = seed;
    return p;
}

// --------------------------------------------------------- liveness sweep

class Liveness
    : public ::testing::TestWithParam<
          std::tuple<const char *, ModelKind, PersistencyModel>>
{
};

TEST_P(Liveness, RunsToCompletion)
{
    setLogQuiet(true);
    auto [name, kind, pm] = GetParam();
    SimConfig cfg;
    cfg.model = kind;
    cfg.persistency = pm;
    cfg.maxRunTicks = 1'000'000'000ULL;
    System sys(cfg);
    sys.loadTrace(buildTrace(name, cfg.numCores, smallParams(3)));
    EXPECT_TRUE(sys.run()) << name << " deadlocked under "
                           << toString(kind) << "/" << toString(pm);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Liveness,
    ::testing::Combine(
        ::testing::Values("nstore", "echo", "vacation", "memcached",
                          "heap", "queue", "skiplist", "cceh",
                          "fast_fair", "dash-lh", "dash-eh", "p-art",
                          "p-clht", "p-masstree"),
        ::testing::Values(ModelKind::Baseline, ModelKind::Hops,
                          ModelKind::Asap, ModelKind::Eadr),
        ::testing::Values(PersistencyModel::Epoch,
                          PersistencyModel::Release)));

// ------------------------------------------------------------ crash fuzz

class CrashFuzz
    : public ::testing::TestWithParam<
          std::tuple<const char *, PersistencyModel>>
{
};

TEST_P(CrashFuzz, AsapConsistentAtRandomCrashPoints)
{
    setLogQuiet(true);
    auto [name, pm] = GetParam();
    Rng rng(hash64(std::string(name).size() * 977 +
                   (pm == PersistencyModel::Epoch ? 1 : 2)));

    // Measure the full runtime once, then crash at random fractions.
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    cfg.persistency = pm;
    {
        System probe(cfg);
        probe.loadTrace(buildTrace(name, cfg.numCores, smallParams(9)));
        ASSERT_TRUE(probe.run());
        cfg.maxRunTicks = maxTick;
        const Tick total = probe.runTicks();
        for (int trial = 0; trial < 4; ++trial) {
            const Tick when = 1 + rng.below(total);
            System sys(cfg, /*keep_run_log=*/true);
            sys.loadTrace(
                buildTrace(name, cfg.numCores, smallParams(9)));
            sys.crashAt(when);
            CheckResult r = checkCrashConsistency(
                sys.runLog(), sys.nvm(), sys.committedUpTo());
            EXPECT_TRUE(r.ok)
                << name << "/" << toString(pm) << " crash@" << when
                << ": " << r.message;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrashFuzz,
    ::testing::Combine(
        ::testing::Values("nstore", "echo", "vacation", "memcached",
                          "heap", "queue", "skiplist", "cceh",
                          "fast_fair", "dash-lh", "dash-eh", "p-art",
                          "p-clht", "p-masstree"),
        ::testing::Values(PersistencyModel::Epoch,
                          PersistencyModel::Release)));

TEST(CrashFuzz, HopsConsistentToo)
{
    setLogQuiet(true);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SimConfig cfg;
        cfg.model = ModelKind::Hops;
        System sys(cfg, true);
        sys.loadTrace(buildTrace("cceh", cfg.numCores,
                                 smallParams(seed)));
        sys.crashAt(10'000 * seed);
        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
    }
}

TEST(CrashFuzz, SyntheticCollisionHeavy)
{
    // Tiny shared region + many threads maximises write collisions
    // (Figure 5 situations) and delay-record churn.
    setLogQuiet(true);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        SimConfig cfg;
        cfg.model = ModelKind::Asap;
        TraceRecorder rec(cfg.numCores, seed);
        SyntheticParams p;
        p.opsPerThread = 50;
        p.regionLines = 8;
        p.lockCount = 2;
        p.sharedPct = 90;
        p.computeCycles = 30;
        genSyntheticWorkload(rec, p);
        System sys(cfg, true);
        sys.loadTrace(rec.finish());
        sys.crashAt(15'000 * seed);
        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
        EXPECT_GT(sys.stats().get("rt.totalUndo"), 0u);
    }
}

TEST(CrashFuzz, TinyRecoveryTableStillConsistent)
{
    // A 4-entry RT forces constant NACK/conservative churn; crash
    // consistency must hold regardless.
    setLogQuiet(true);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SimConfig cfg;
        cfg.model = ModelKind::Asap;
        cfg.rtEntries = 4;
        System sys(cfg, true);
        sys.loadTrace(buildTrace("fast_fair", cfg.numCores,
                                 smallParams(seed)));
        sys.crashAt(20'000 * seed);
        CheckResult r = checkCrashConsistency(
            sys.runLog(), sys.nvm(), sys.committedUpTo());
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
    }
}

TEST(CrashFuzz, CrashAfterCompletionKeepsEverything)
{
    setLogQuiet(true);
    SimConfig cfg;
    cfg.model = ModelKind::Asap;
    System sys(cfg, true);
    sys.loadTrace(buildTrace("p-clht", cfg.numCores, smallParams(2)));
    sys.crashAt(maxTick - 1); // runs to completion, then "crash"
    CheckResult r = checkCrashConsistency(sys.runLog(), sys.nvm(),
                                          sys.committedUpTo());
    EXPECT_TRUE(r.ok) << r.message;
    // Every epoch committed: every last write per line must survive.
    const auto committed = sys.committedUpTo();
    for (std::uint64_t c : committed)
        EXPECT_GT(c, 0u);
}

// ------------------------------------------------ evaluation properties

TEST(PerfProperties, OrderingAcrossModels)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    p.opsPerThread = 60;
    for (const char *name : {"cceh", "p-art", "queue"}) {
        RunResult base = runExperiment(name, ModelKind::Baseline,
                                       PersistencyModel::Release, 4, p);
        RunResult hops = runExperiment(name, ModelKind::Hops,
                                       PersistencyModel::Release, 4, p);
        RunResult asap = runExperiment(name, ModelKind::Asap,
                                       PersistencyModel::Release, 4, p);
        RunResult eadr = runExperiment(name, ModelKind::Eadr,
                                       PersistencyModel::Release, 4, p);
        EXPECT_LE(asap.runTicks, hops.runTicks)
            << name << ": ASAP must not lose to HOPS";
        EXPECT_LE(asap.runTicks, base.runTicks)
            << name << ": ASAP must not lose to baseline";
        EXPECT_LE(eadr.runTicks, asap.runTicks + asap.runTicks / 5)
            << name << ": eADR within sanity of ASAP";
    }
}

TEST(PerfProperties, AsapBlockedCyclesBelowHops)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    p.opsPerThread = 60;
    RunResult hops = runExperiment("cceh", ModelKind::Hops,
                                   PersistencyModel::Release, 4, p);
    RunResult asap = runExperiment("cceh", ModelKind::Asap,
                                   PersistencyModel::Release, 4, p);
    EXPECT_LT(asap.cyclesBlocked, hops.cyclesBlocked);
}

TEST(PerfProperties, AsapPbOccupancyBelowHops)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    p.opsPerThread = 60;
    RunResult hops = runExperiment("dash-eh", ModelKind::Hops,
                                   PersistencyModel::Release, 4, p);
    RunResult asap = runExperiment("dash-eh", ModelKind::Asap,
                                   PersistencyModel::Release, 4, p);
    EXPECT_LT(asap.pbOccMean, hops.pbOccMean);
}

TEST(PerfProperties, EpochSplittingUnderEp)
{
    // EP detects dependencies on conflicting data accesses, so it
    // must see at least as many cross-thread dependencies as RP.
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    RunResult rp = runExperiment("cceh", ModelKind::Asap,
                                 PersistencyModel::Release, 4, p);
    RunResult ep = runExperiment("cceh", ModelKind::Asap,
                                 PersistencyModel::Epoch, 4, p);
    EXPECT_GE(ep.crossDeps, rp.crossDeps);
}

TEST(PerfProperties, MoreCoresMoreThroughput)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    p.opsPerThread = 60;
    RunResult one = runExperiment("p-art", ModelKind::Asap,
                                  PersistencyModel::Release, 1, p);
    RunResult four = runExperiment("p-art", ModelKind::Asap,
                                   PersistencyModel::Release, 4, p);
    const double tput1 = 1.0 / static_cast<double>(one.runTicks);
    const double tput4 = 4.0 / static_cast<double>(four.runTicks);
    EXPECT_GT(tput4, tput1) << "ASAP scales with cores";
}

TEST(PerfProperties, BandwidthMicrobenchAsapBeatsHops)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(1);
    p.opsPerThread = 100;
    SimConfig hops;
    hops.model = ModelKind::Hops;
    hops.nvmBanks = 16;
    SimConfig asap;
    asap.model = ModelKind::Asap;
    asap.nvmBanks = 16;
    RunResult h = runExperiment("bandwidth", hops, p);
    RunResult a = runExperiment("bandwidth", asap, p);
    EXPECT_LT(a.runTicks, h.runTicks);
}

TEST(PerfProperties, StatsArePlausible)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    RunResult r = runExperiment("cceh", ModelKind::Asap,
                                PersistencyModel::Release, 4, p);
    EXPECT_GT(r.runTicks, 0u);
    EXPECT_GT(r.pmWrites, 0u);
    EXPECT_GT(r.epochs, 0u);
    EXPECT_GT(r.entriesInserted, 0u);
    EXPECT_LE(r.rtMaxOccupancy, 32u);
    EXPECT_LE(r.pbOccP99, 32u);
    EXPECT_GT(r.totSpecWrites, 0u);
    EXPECT_GT(r.totalUndo, 0u);
}

TEST(PerfProperties, FinalMediaStateAgreesAcrossModels)
{
    // After a complete (undisturbed) run, every model must leave the
    // media with exactly the last write per line: the models differ
    // in *when* writes persist, never in *what* ends up durable.
    setLogQuiet(true);
    WorkloadParams p = smallParams(8);
    for (const char *name : {"echo", "fast_fair", "queue"}) {
        std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
            finals;
        for (ModelKind kind :
             {ModelKind::Baseline, ModelKind::Hops, ModelKind::Asap,
              ModelKind::Eadr}) {
            SimConfig cfg;
            cfg.model = kind;
            System sys(cfg);
            sys.loadTrace(buildTrace(name, cfg.numCores, p));
            ASSERT_TRUE(sys.run());
            // eADR persists the remainder only on a power event.
            sys.crashAt(maxTick - 1);
            finals.push_back(sys.nvm().all());
        }
        for (std::size_t m = 1; m < finals.size(); ++m) {
            EXPECT_EQ(finals[m].size(), finals[0].size()) << name;
            for (const auto &[line, value] : finals[0]) {
                auto it = finals[m].find(line);
                ASSERT_NE(it, finals[m].end())
                    << name << " model " << m << " line " << line;
                EXPECT_EQ(it->second, value)
                    << name << " model " << m << " line " << line;
            }
        }
    }
}

TEST(PerfProperties, DeterministicRuns)
{
    setLogQuiet(true);
    WorkloadParams p = smallParams(5);
    RunResult a = runExperiment("echo", ModelKind::Asap,
                                PersistencyModel::Release, 4, p);
    RunResult b = runExperiment("echo", ModelKind::Asap,
                                PersistencyModel::Release, 4, p);
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.totalUndo, b.totalUndo);
}

} // namespace
} // namespace asap
