/**
 * @file
 * Unit tests for the persist-path structures: counting Bloom filter,
 * write-back buffer, epoch table, persist buffer.
 */

#include <gtest/gtest.h>

#include "mem/memory_controller.hh"
#include "persist/bloom_filter.hh"
#include "persist/epoch_table.hh"
#include "persist/persist_buffer.hh"
#include "persist/wbb.hh"
#include "sim/log.hh"

namespace asap
{
namespace
{

// ------------------------------------------------------------ bloom

TEST(Bloom, NoFalseNegatives)
{
    CountingBloom bloom(512, 3);
    for (std::uint64_t i = 0; i < 100; ++i)
        bloom.insert(i * 977);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_TRUE(bloom.test(i * 977));
}

TEST(Bloom, RemoveClears)
{
    CountingBloom bloom(512, 3);
    bloom.insert(42);
    EXPECT_TRUE(bloom.test(42));
    bloom.remove(42);
    EXPECT_FALSE(bloom.test(42));
    EXPECT_EQ(bloom.population(), 0u);
}

TEST(Bloom, CountingSupportsDuplicates)
{
    CountingBloom bloom(512, 3);
    bloom.insert(7);
    bloom.insert(7);
    bloom.remove(7);
    EXPECT_TRUE(bloom.test(7)) << "one insertion remains";
    bloom.remove(7);
    EXPECT_FALSE(bloom.test(7));
}

TEST(Bloom, LowFalsePositiveRateWhenSparse)
{
    CountingBloom bloom(4096, 3);
    for (std::uint64_t i = 0; i < 32; ++i)
        bloom.insert(i);
    unsigned fps = 0;
    for (std::uint64_t probe = 1000; probe < 2000; ++probe)
        fps += bloom.test(probe) ? 1 : 0;
    EXPECT_LT(fps, 20u);
}

TEST(BloomDeath, RemoveFromEmptyPanics)
{
    CountingBloom bloom(64, 2);
    EXPECT_DEATH(bloom.remove(1), "empty");
}

// -------------------------------------------------------------- wbb

TEST(Wbb, ParkAndRelease)
{
    WriteBackBuffer wbb(4);
    EXPECT_TRUE(wbb.park(100, 5));
    EXPECT_TRUE(wbb.park(101, 9));
    EXPECT_TRUE(wbb.holds(100));
    EXPECT_EQ(wbb.releaseUpTo(5), 1u);
    EXPECT_FALSE(wbb.holds(100));
    EXPECT_TRUE(wbb.holds(101));
    EXPECT_EQ(wbb.releaseUpTo(20), 1u);
    EXPECT_EQ(wbb.size(), 0u);
}

TEST(Wbb, FullRefuses)
{
    WriteBackBuffer wbb(2);
    EXPECT_TRUE(wbb.park(1, 1));
    EXPECT_TRUE(wbb.park(2, 2));
    EXPECT_FALSE(wbb.park(3, 3));
    EXPECT_TRUE(wbb.full());
}

// ------------------------------------------------------ epoch table

struct EtFixture : public ::testing::Test
{
    StatSet stats;
    EpochTable et{0, 8, stats};
    std::vector<std::uint64_t> committable;

    EtFixture()
    {
        setLogQuiet(true);
        et.setCommittableHook(
            [this](std::uint64_t ts) { committable.push_back(ts); });
    }
};

TEST_F(EtFixture, StartsWithEpochOne)
{
    EXPECT_EQ(et.currentEpoch(), 1u);
    EXPECT_EQ(et.size(), 1u);
    EXPECT_EQ(et.lastCommitted(), 0u);
}

TEST_F(EtFixture, CloseOpensNext)
{
    bool done = false;
    et.closeEpoch(false, [&]() { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(et.currentEpoch(), 2u);
    // Epoch 1 had no writes: closed + complete + safe => committable.
    ASSERT_EQ(committable.size(), 1u);
    EXPECT_EQ(committable[0], 1u);
}

TEST_F(EtFixture, WritesDelayCompletion)
{
    et.addWrite(1);
    et.addWrite(1);
    et.closeEpoch(false, []() {});
    EXPECT_TRUE(committable.empty());
    et.ackWrite(1);
    EXPECT_TRUE(committable.empty());
    et.ackWrite(1);
    ASSERT_EQ(committable.size(), 1u);
    EXPECT_EQ(committable[0], 1u);
}

TEST_F(EtFixture, CommitInOrderOnly)
{
    et.closeEpoch(false, []() {});
    et.closeEpoch(false, []() {});
    // Epoch 1 committable fired; commit it and epoch 2 follows.
    ASSERT_FALSE(committable.empty());
    et.markCommitted(1);
    EXPECT_EQ(et.lastCommitted(), 1u);
    ASSERT_EQ(committable.size(), 2u);
    EXPECT_EQ(committable[1], 2u);
}

TEST_F(EtFixture, IsSafeOnlyForOldest)
{
    et.addWrite(1);
    et.closeEpoch(false, []() {});
    et.addWrite(2);
    EXPECT_TRUE(et.isSafe(1));
    EXPECT_FALSE(et.isSafe(2));
    et.ackWrite(1);
    et.markCommitted(1);
    EXPECT_TRUE(et.isSafe(1)) << "committed epochs stay safe";
    EXPECT_TRUE(et.isSafe(2));
}

TEST_F(EtFixture, DependencyBlocksSafety)
{
    et.closeEpoch(true, []() {});
    et.markCommitted(1);
    committable.clear();
    et.openDependentEpoch(3, 9);
    et.addWrite(2);
    EXPECT_FALSE(et.isSafe(2));
    et.ackWrite(2);
    et.closeEpoch(true, []() {});
    EXPECT_TRUE(committable.empty()) << "dependency unresolved";
    et.resolveDependency(3, 9);
    ASSERT_EQ(committable.size(), 1u);
    EXPECT_EQ(committable[0], 2u);
}

TEST_F(EtFixture, DependentsReturnedOnCommit)
{
    et.addWrite(1);
    EXPECT_FALSE(et.registerDependent(5, 1));
    et.ackWrite(1);
    et.closeEpoch(false, []() {});
    auto deps = et.markCommitted(1);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], 5u);
}

TEST_F(EtFixture, RegisterOnCommittedReturnsTrue)
{
    et.closeEpoch(false, []() {});
    et.markCommitted(1);
    EXPECT_TRUE(et.registerDependent(5, 1));
}

TEST_F(EtFixture, DfenceWaitsForAllCommits)
{
    et.addWrite(1);
    et.closeEpoch(false, []() {});
    bool released = false;
    et.waitAllCommitted([&]() { released = true; });
    EXPECT_FALSE(released);
    et.ackWrite(1);
    et.markCommitted(1);
    EXPECT_TRUE(released);
}

TEST_F(EtFixture, FullTableStallsClose)
{
    // Capacity 8: open epochs 2..8 (7 closes) leaves the table full
    // with uncommittable (write-pending) epochs.
    for (std::uint64_t e = 1; e <= 7; ++e) {
        et.addWrite(e);
        et.closeEpoch(false, []() {});
    }
    EXPECT_EQ(et.size(), 8u);
    bool opened = false;
    et.addWrite(8);
    et.closeEpoch(false, [&]() { opened = true; });
    EXPECT_FALSE(opened);
    EXPECT_GT(stats.get("et.fullStalls"), 0u);
    // Retire epoch 1: the stalled close proceeds.
    et.ackWrite(1);
    ASSERT_FALSE(committable.empty());
    et.markCommitted(1);
    EXPECT_TRUE(opened);
}

TEST_F(EtFixture, OverflowSplitBypassesCapacity)
{
    for (std::uint64_t e = 1; e <= 7; ++e) {
        et.addWrite(e);
        et.closeEpoch(false, []() {});
    }
    bool opened = false;
    et.closeEpoch(true, [&]() { opened = true; });
    EXPECT_TRUE(opened);
    EXPECT_GT(stats.get("et.overflowSplits"), 0u);
}

TEST_F(EtFixture, EarlyMcMaskTracked)
{
    et.addWrite(1);
    et.markEarlyMc(1, 0);
    et.markEarlyMc(1, 1);
    const EpochTable::Entry *e = et.find(1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->earlyMcMask, 0b11u);
}

TEST_F(EtFixture, AckUnknownEpochPanics)
{
    EXPECT_DEATH(et.ackWrite(99), "unknown epoch");
}

// --------------------------------------------------- persist buffer

struct PbFixture : public ::testing::Test
{
    SimConfig cfg;
    EventQueue eq;
    NvmContents media;
    StatSet stats;
    AddressMap amap{2, 256};
    std::vector<std::unique_ptr<MemoryController>> mcOwners;
    std::vector<MemoryController *> mcs;
    std::unique_ptr<PersistBuffer> pb;

    std::vector<std::pair<std::uint64_t, bool>> acks; // (epoch, early)
    FlushMode mode = FlushMode::Safe;

    PbFixture()
    {
        setLogQuiet(true);
        cfg.pbEntries = 4;
        cfg.pbMaxInflight = 2;
        for (unsigned i = 0; i < 2; ++i) {
            mcOwners.push_back(std::make_unique<MemoryController>(
                i, cfg, eq, media, stats));
            mcs.push_back(mcOwners.back().get());
        }
        pb = std::make_unique<PersistBuffer>(0, cfg, eq, stats, amap,
                                             mcs);
        pb->configure(
            [this](std::uint64_t) { return mode; },
            [this](std::uint64_t e, std::uint64_t, bool early) {
                acks.emplace_back(e, early);
            },
            [](std::uint64_t, std::uint64_t) {});
    }
};

TEST_F(PbFixture, FlushesAndAcks)
{
    bool accepted = false;
    pb->enqueue(1, 100, 1, [&]() { accepted = true; });
    EXPECT_TRUE(accepted);
    eq.run();
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0].first, 1u);
    EXPECT_TRUE(pb->empty());
    EXPECT_EQ(media.read(1), 100u);
}

TEST_F(PbFixture, CoalescesSameLineSameEpoch)
{
    mode = FlushMode::Hold; // keep both queued
    pb->enqueue(1, 100, 1, []() {});
    pb->enqueue(1, 200, 1, []() {});
    EXPECT_EQ(stats.get("pb.coalesced"), 1u);
    // The swallowed store is acknowledged immediately.
    ASSERT_EQ(acks.size(), 1u);
    mode = FlushMode::Safe;
    pb->kick();
    eq.run();
    EXPECT_EQ(media.read(1), 200u);
    EXPECT_EQ(acks.size(), 2u);
}

TEST_F(PbFixture, BackPressureWhenFull)
{
    mode = FlushMode::Hold;
    unsigned accepted = 0;
    for (std::uint64_t i = 0; i < 5; ++i)
        pb->enqueue(i, i, 1, [&]() { ++accepted; });
    EXPECT_EQ(accepted, 4u) << "5th store stalls on a full buffer";
    EXPECT_EQ(stats.get("pb.fullEvents"), 1u);
    mode = FlushMode::Safe;
    pb->kick();
    eq.run();
    EXPECT_EQ(accepted, 5u);
    EXPECT_TRUE(pb->empty());
}

TEST_F(PbFixture, HoldBlocksFlushing)
{
    mode = FlushMode::Hold;
    pb->enqueue(1, 1, 1, []() {});
    eq.run();
    EXPECT_EQ(acks.size(), 0u);
    EXPECT_EQ(pb->occupancy(), 1u);
}

TEST_F(PbFixture, EarlyFlushMarksPacket)
{
    mode = FlushMode::Early;
    pb->enqueue(1, 1, 2, []() {});
    // Early flushes need a recovery policy at the MC; without one the
    // MC panics — so verify the early marking via the spec-write stat
    // before any packet arrives.
    EXPECT_EQ(stats.get("pb.totSpecWrites"), 1u);
}

TEST_F(PbFixture, SameLineFlushesStayOrdered)
{
    mode = FlushMode::Safe;
    pb->enqueue(1, 100, 1, []() {});
    // Different epoch, same line: must not overlap in flight.
    pb->enqueue(1, 200, 2, []() {});
    EXPECT_EQ(pb->occupancy(), 2u);
    eq.run();
    EXPECT_EQ(media.read(1), 200u) << "newer value wins";
    EXPECT_EQ(acks.size(), 2u);
}

TEST_F(PbFixture, OccupancyTracked)
{
    mode = FlushMode::Hold;
    pb->enqueue(1, 1, 1, []() {});
    pb->enqueue(2, 2, 1, []() {});
    EXPECT_EQ(pb->occupancy(), 2u);
    mode = FlushMode::Safe;
    pb->kick();
    eq.run();
    EXPECT_EQ(pb->occupancy(), 0u);
    EXPECT_EQ(pb->enqueued(), 2u);
    EXPECT_EQ(pb->flushedIndex(), 2u);
}

TEST_F(PbFixture, CrashDropsEverything)
{
    mode = FlushMode::Hold;
    pb->enqueue(1, 1, 1, []() {});
    pb->crash();
    EXPECT_TRUE(pb->empty());
    mode = FlushMode::Safe;
    pb->kick();
    eq.run();
    EXPECT_EQ(acks.size(), 0u);
}

} // namespace
} // namespace asap
